module Sdfg = Sdf.Sdfg
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

exception Deadlocked
exception State_space_exceeded of int

let idle = max_int

(* The engine mirrors Constrained.analyze, with the tile's static order
   replaced by a FIFO ready list: enabled bound firings reserve their input
   tokens and queue; the processor starts them in queue order, one at a
   time, TDMA-gated at the given slice sizes. The recorded start order per
   tile becomes the static-order schedule. *)
let run ?(max_states = 500_000) (ba : Bind_aware.t) =
  let g = ba.Bind_aware.graph in
  let arch = ba.Bind_aware.arch in
  let nt = Archgraph.num_tiles arch in
  let n = Sdfg.num_actors g in
  let unbound =
    Array.to_list (Array.init n Fun.id)
    |> List.filter (fun a -> ba.Bind_aware.tile_of.(a) < 0)
  in
  let bound =
    Array.to_list (Array.init n Fun.id)
    |> List.filter (fun a -> ba.Bind_aware.tile_of.(a) >= 0)
  in
  let tokens = Array.map (fun c -> c.Sdfg.tokens) (Sdfg.channels g) in
  let pending = Array.make n [] in
  let tile_busy = Array.make nt idle in
  let tile_cur = Array.make nt (-1) in
  let ready = Array.make nt [] in
  (* FIFO, reversed: enqueue with cons *)
  let trace = Array.make nt [] in
  (* started actors, reversed *)
  let trace_len = Array.make nt 0 in
  let time = ref 0 in
  let ops = Engine.Ops.of_graph g in
  let enabled a = Engine.Ops.enabled ops tokens a in
  let consume a = Engine.Ops.consume ops tokens a in
  let produce a = Engine.Ops.produce ops tokens a in
  let insert_sorted = Engine.Ops.insert_sorted in
  let start_fixpoint () =
    let guard = ref 0 in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun a ->
          while enabled a do
            changed := true;
            incr guard;
            if !guard > 10_000_000 then
              invalid_arg "List_scheduler: zero-time livelock";
            consume a;
            let tau = ba.Bind_aware.exec_times.(a) in
            if tau = 0 then produce a
            else pending.(a) <- insert_sorted (!time + tau) pending.(a)
          done)
        unbound;
      (* Enqueue newly enabled bound firings (tokens reserved on enqueue so
         queue entries are committed firings). *)
      List.iter
        (fun a ->
          while enabled a do
            changed := true;
            incr guard;
            if !guard > 10_000_000 then
              invalid_arg "List_scheduler: ready-list livelock";
            consume a;
            ready.(ba.Bind_aware.tile_of.(a)) <-
              a :: ready.(ba.Bind_aware.tile_of.(a))
          done)
        bound;
      (* Idle processors pick the head of their ready list. *)
      for t = 0 to nt - 1 do
        if tile_busy.(t) = idle && ready.(t) <> [] then begin
          changed := true;
          let rec split_last acc = function
            | [ x ] -> (x, List.rev acc)
            | x :: rest -> split_last (x :: acc) rest
            | [] -> assert false
          in
          let a, rest = split_last [] ready.(t) in
          ready.(t) <- rest;
          trace.(t) <- a :: trace.(t);
          trace_len.(t) <- trace_len.(t) + 1;
          let tile = Archgraph.tile arch t in
          let fin =
            Constrained.tdma_finish ~t:!time ~tau:ba.Bind_aware.exec_times.(a)
              ~w:tile.Tile.wheel ~omega:ba.Bind_aware.slices.(t)
          in
          if fin = !time then produce a
          else begin
            tile_busy.(t) <- fin;
            tile_cur.(t) <- a
          end
        end
      done
    done
  in
  let snapshot () =
    let rel = Array.map (List.map (fun c -> c - !time)) pending in
    let busy_rel =
      Array.map (fun c -> if c = idle then -1 else c - !time) tile_busy
    in
    let phases =
      Array.init nt (fun t ->
          let w = (Archgraph.tile arch t).Tile.wheel in
          if w = 0 || ba.Bind_aware.slices.(t) >= w then 0 else !time mod w)
    in
    Marshal.to_string
      ( Array.copy tokens,
        rel,
        busy_rel,
        Array.copy tile_cur,
        Array.copy ready,
        phases )
      [ Marshal.No_sharing ]
  in
  let seen : (string, int array) Hashtbl.t = Hashtbl.create 4096 in
  let rec explore () =
    start_fixpoint ();
    let key = snapshot () in
    match Hashtbl.find_opt seen key with
    | Some lens0 -> (lens0, Array.map (fun l -> List.rev l) trace)
    | None ->
        if Hashtbl.length seen >= max_states then
          raise (State_space_exceeded max_states);
        Hashtbl.add seen key (Array.copy trace_len);
        let next =
          Array.fold_left
            (fun acc l -> match l with [] -> acc | c :: _ -> min acc c)
            (Array.fold_left min idle tile_busy)
            pending
        in
        if next = idle then raise Deadlocked;
        time := next;
        Array.iteri
          (fun t c ->
            if c = !time then begin
              produce tile_cur.(t);
              tile_busy.(t) <- idle;
              tile_cur.(t) <- -1
            end)
          tile_busy;
        Array.iteri
          (fun a l ->
            let rec settle = function
              | c :: rest when c = !time ->
                  produce a;
                  settle rest
              | l -> l
            in
            pending.(a) <- settle l)
          pending;
        explore ()
  in
  explore ()

let raw_schedules ?max_states (ba : Bind_aware.t) =
  let lens0, traces =
    try run ?max_states ba with Constrained.Deadlocked -> raise Deadlocked
  in
  Array.mapi
    (fun t full ->
      let hosts_actor = Array.exists (fun bt -> bt = t) ba.Bind_aware.tile_of in
      if not hosts_actor then None
      else begin
        let split = lens0.(t) in
        let prefix = List.filteri (fun i _ -> i < split) full in
        let period = List.filteri (fun i _ -> i >= split) full in
        if period = [] then raise Deadlocked
        else Some (Schedule.make ~prefix ~period)
      end)
    traces

let schedules ?max_states ba =
  Array.map (Option.map Schedule.compact) (raw_schedules ?max_states ba)
