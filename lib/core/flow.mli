module Appgraph = Appmodel.Appgraph
module Archgraph = Platform.Archgraph

(** An iterative wrapper around {!Strategy.allocate}.

    The paper's strategy executes its three steps exactly once; the SDF3
    tool flow that grew out of it revises the binding when the time-slice
    step discovers the throughput constraint cannot be met. This module
    provides that loop in a simple, deterministic form: a list of tile-cost
    settings is tried in order (by default the five settings of Table 4,
    ending with the paper's derived (0,1,2)), and the first allocation that
    satisfies the constraint wins. *)

type attempt = {
  weights : Cost.weights;
  outcome : (Strategy.allocation, Strategy.failure) result;
}

type result = {
  allocation : Strategy.allocation option;  (** the first success, if any *)
  attempts : attempt list;  (** everything tried, in order *)
}

val default_weight_ladder : Cost.weights list
(** (0,1,2), (0,0,1), (0,1,0), (1,1,1), (1,0,0) — communication-aware
    settings first, the Table-4 ranking on the mixed set. *)

val allocate_with_retry :
  ?weight_ladder:Cost.weights list ->
  ?connection_model:Bind_aware.connection_model ->
  ?max_states:int ->
  ?budget:Budget.t ->
  Appgraph.t ->
  Archgraph.t ->
  result
(** Try each setting of the ladder until an allocation succeeds. Binding
    failures, scheduling deadlocks, slice failures and budget-exhausted
    rungs all advance to the next setting — under a finite [budget]
    (default infinite) a rung that runs out degrades to the next rung
    (counted as ["budget.rung_aborts"]) instead of killing the run, and
    an absolute deadline makes the remaining rungs fail fast.

    When a {!Par} worker pool is active ([Par.set_jobs n] with [n > 1])
    and memoization is enabled, all rungs are first evaluated
    speculatively in parallel with telemetry suppressed, purely to warm
    the analysis memo tables; the authoritative sequential pass then runs
    over warm caches. Results and the attempt list are bit-identical to a
    sequential run. *)
