module Rat = Sdf.Rat
module Tile = Platform.Tile
module Appgraph = Appmodel.Appgraph
module Archgraph = Platform.Archgraph

let log_src = Logs.Src.create "sdfalloc.strategy" ~doc:"Resource allocation strategy"

module Log = (val Logs.src_log log_src)

type stats = {
  throughput_checks : int;
  bind_seconds : float;
  schedule_seconds : float;
  slice_seconds : float;
}

type allocation = {
  app : Appgraph.t;
  arch : Archgraph.t;
  binding : Binding.t;
  schedules : Schedule.t option array;
  slices : int array;
  throughput : Rat.t;
  stats : stats;
}

type failure =
  | Bind_failed of Binding_step.failure
  | Schedule_failed
  | Slice_failed of Slice_alloc.failure
  | Budget_exhausted of Budget.reason

let pp_failure ppf = function
  | Bind_failed f ->
      Format.fprintf ppf "binding failed at actor %d" f.Binding_step.failed_actor
  | Schedule_failed -> Format.fprintf ppf "schedule construction deadlocked"
  | Slice_failed f ->
      Format.fprintf ppf
        "slice allocation failed (best achievable throughput %a)" Rat.pp
        f.Slice_alloc.max_throughput
  | Budget_exhausted r ->
      Format.fprintf ppf "budget exhausted (%a)" Budget.pp_reason r

let default_weights = Cost.weights 1. 1. 1.

(* Phase-boundary budget checks: the hot loops already probe the budget per
   state; these catch exhaustion between phases (and report it as the
   distinct failure instead of a misleading phase failure). *)
let budget_exhausted budget = Budget.exceeded budget <> None

let budget_error budget =
  let reason =
    match Budget.exceeded budget with
    | Some r -> r
    | None -> Budget.Cancelled (* raced back under budget; treat as cut *)
  in
  Obs.Counter.add "strategy.budget_exhausted" 1;
  Error (Budget_exhausted reason)

let allocate ?(weights = default_weights) ?connection_model ?max_states
    ?max_cycles ?(budget = Budget.infinite) app arch =
  (* Wall clock, not [Sys.time]: these stats may be measured on one worker
     domain while siblings burn CPU, and process CPU time sums over all of
     them. *)
  let clock = Unix.gettimeofday in
  let t0 = clock () in
  Obs.Counter.add "strategy.runs" 1;
  Log.debug (fun m ->
      m "allocating %s (lambda %s)" app.Appgraph.app_name
        (Rat.to_string app.Appgraph.lambda));
  match
    Obs.Span.with_ "strategy.bind" (fun () ->
        Binding_step.bind ?max_cycles ~weights app arch)
  with
  | Error e ->
      Obs.Counter.add "strategy.bind_failed" 1;
      Log.info (fun m ->
          m "%s: binding failed at actor %d" app.Appgraph.app_name
            e.Binding_step.failed_actor);
      Error (Bind_failed e)
  | Ok _ when budget_exhausted budget -> budget_error budget
  | Ok binding -> (
      let t1 = clock () in
      match
        Obs.Span.with_ "strategy.static_order" (fun () ->
            let half = Bind_aware.half_wheel_slices app arch binding in
            let ba50 =
              Bind_aware.build ?connection_model ~app ~arch ~binding
                ~slices:half ()
            in
            match List_scheduler.schedules ?max_states ba50 with
            | exception List_scheduler.Deadlocked -> None
            | exception List_scheduler.State_space_exceeded _ -> None
            | schedules -> Some schedules)
      with
      | None ->
          Obs.Counter.add "strategy.schedule_failed" 1;
          Error Schedule_failed
      | Some _ when budget_exhausted budget -> budget_error budget
      | Some schedules -> (
          let t2 = clock () in
          match
            Obs.Span.with_ "strategy.slice_alloc" (fun () ->
                Slice_alloc.allocate ?connection_model ?max_states
                  ~budget app arch binding schedules)
          with
          | Error f -> (
              Obs.Counter.add "strategy.throughput_checks" f.Slice_alloc.checks;
              (* A budget-cut throughput probe reads as 0, so a slice
                 failure with at least one cut probe is inconclusive:
                 report the budget, not the slices. *)
              if budget_exhausted budget then budget_error budget
              else
                match f.Slice_alloc.budget_tripped with
                | Some reason ->
                    Obs.Counter.add "strategy.budget_exhausted" 1;
                    Error (Budget_exhausted reason)
                | None ->
                    Obs.Counter.add "strategy.slice_failed" 1;
                    Error (Slice_failed f))
          | Ok outcome ->
              let t3 = clock () in
              Obs.Counter.add "strategy.ok" 1;
              Obs.Counter.add "strategy.throughput_checks"
                outcome.Slice_alloc.checks;
              Log.info (fun m ->
                  m "%s: allocated, throughput %s after %d checks"
                    app.Appgraph.app_name
                    (Rat.to_string outcome.Slice_alloc.throughput)
                    outcome.Slice_alloc.checks);
              Ok
                {
                  app;
                  arch;
                  binding;
                  schedules;
                  slices = outcome.Slice_alloc.slices;
                  throughput = outcome.Slice_alloc.throughput;
                  stats =
                    {
                      throughput_checks = outcome.Slice_alloc.checks;
                      bind_seconds = t1 -. t0;
                      schedule_seconds = t2 -. t1;
                      slice_seconds = t3 -. t2;
                    };
                }))

let is_valid alloc arch =
  Obs.Span.with_ "strategy.validate" @@ fun () ->
  Obs.Counter.add "strategy.validations" 1;
  let app = alloc.app in
  let resources_ok =
    match Binding.check app arch alloc.binding with
    | Ok () -> true
    | Error _ -> false
  in
  let slices_ok =
    Array.for_all Fun.id
      (Array.mapi
         (fun t omega ->
           omega >= 0 && omega <= Tile.available_wheel (Archgraph.tile arch t))
         alloc.slices)
  in
  let throughput_ok = Rat.compare alloc.throughput app.Appgraph.lambda >= 0 in
  (* Re-measure to guard against stale stored values. The re-measurement
     repeats the winning slice configuration's analysis, so with the
     {!Constrained} memo warm it is a pure cache hit. *)
  let remeasured =
    let ba = Bind_aware.build ~app ~arch ~binding:alloc.binding ~slices:alloc.slices () in
    Constrained.throughput_or_zero ba ~schedules:alloc.schedules
  in
  resources_ok && slices_ok && throughput_ok
  && Rat.compare remeasured app.Appgraph.lambda >= 0
