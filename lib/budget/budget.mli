(** Resource budgets and cooperative cancellation for the state-space
    explorations and the layers driving them.

    A binding-aware throughput analysis can explode: the state space of a
    single slice probe may dwarf every other probe of the run. Hard state
    caps ({!Analysis.Selftimed}'s [max_states]) abort such a run with
    nothing to show; a {!t} instead describes how much a caller is willing
    to spend — wall clock, stored states, packed arena bytes — plus a
    {!Cancel} token a supervisor can trigger from another domain, and lets
    the exploration stop {e gracefully}, returning the anytime information
    it accumulated (see [Analysis.Selftimed.analyze_budgeted]).

    The check is designed for packed hot loops: state and arena caps are
    two integer compares, and the clock/token probe is amortised over
    {!probe_interval} calls, so an infinite budget costs one load and one
    branch per state. A budget is {e not} reusable across concurrently
    exploring domains for precise accounting — the amortisation counter is
    racy by design (a lost update only perturbs when the clock is read) —
    but sharing one budget (and in particular one token) across a fan-out
    is exactly how cooperative cancellation is meant to be used. *)

(** Cancellation tokens: one writer ({!trigger}), many readers. Triggering
    is idempotent and permanent; readers on other domains observe it at
    their next amortised budget probe, queued {!Par} tasks on a cancelled
    scope are skipped without running. *)
module Cancel : sig
  type t

  val create : unit -> t
  val trigger : t -> unit
  val triggered : t -> bool
end

type reason =
  | Deadline  (** the wall-clock deadline passed *)
  | States  (** the state budget was spent *)
  | Memory  (** the packed-arena byte budget was spent *)
  | Cancelled  (** the {!Cancel} token was triggered *)

val reason_label : reason -> string
(** ["deadline"], ["states"], ["memory"], ["cancelled"] — the stable names
    used in telemetry ([budget.*] counters), the batch journal and the
    CLI. *)

val pp_reason : Format.formatter -> reason -> unit

type t

val infinite : t
(** Never exhausted; {!check} on it is one load and one branch. *)

val is_infinite : t -> bool

val make :
  ?wall_s:float ->
  ?deadline:float ->
  ?max_states:int ->
  ?max_arena_bytes:int ->
  ?cancel:Cancel.t ->
  unit ->
  t
(** [make ()] with no argument is {!infinite}. [wall_s] is a relative
    allowance converted to an absolute deadline now; [deadline] is an
    absolute [Unix.gettimeofday] instant (when both are given the earlier
    wins). [max_states] / [max_arena_bytes] bound the exploration's stored
    states and packed arena size — these two are checked exactly on every
    {!check}, so state-budget outcomes are deterministic. [cancel] attaches
    a shared token. *)

val states_limited : t -> bool

val arena_limited : t -> bool
(** Whether {!check} will look at its [arena_bytes] argument at all —
    callers use this to skip computing the arena size when nobody asked
    for it. *)

val probe_interval : int
(** Number of {!check} calls between two clock/token probes (the state and
    arena caps are exact regardless). *)

val set_probe_hook : (states:int -> unit) -> unit
(** Install a callback fired from {!check}'s amortised slow path — once
    per {!probe_interval} calls on a finite budget, with the caller's
    current state count. The CLIs route it to [Obs.Heartbeat.probe] to
    sample states/s heartbeats; the default is a no-op. The hook runs on
    the exploring domain and must be cheap and non-raising. *)

val check : t -> states:int -> arena_bytes:int -> reason option
(** [check b ~states ~arena_bytes] is [Some r] when the budget is
    exhausted. State and arena caps are compared on every call; the clock
    and the cancel token every {!probe_interval} calls (and on the first).
    Once exhausted, every subsequent call reports a reason again (the
    token is permanent; the clock does not go backwards), though not
    necessarily the same one. *)

val exceeded : t -> reason option
(** An unamortised full probe (clock and token included); for per-phase
    checks outside hot loops. *)
