module Cancel = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let trigger t = Atomic.set t true
  let triggered t = Atomic.get t
end

type reason = Deadline | States | Memory | Cancelled

let reason_label = function
  | Deadline -> "deadline"
  | States -> "states"
  | Memory -> "memory"
  | Cancelled -> "cancelled"

let pp_reason ppf r = Format.pp_print_string ppf (reason_label r)

type t = {
  deadline : float;  (** absolute; [infinity] when unbounded *)
  max_states : int;  (** [max_int] when unbounded *)
  max_arena_bytes : int;  (** [max_int] when unbounded *)
  cancel : Cancel.t option;
  mutable countdown : int;
      (* Calls until the next clock/token probe. Racy when one budget is
         shared across domains: a lost decrement only delays a probe by a
         few calls, never the exact state/arena caps. *)
}

let probe_interval = 128

let infinite =
  {
    deadline = Float.infinity;
    max_states = max_int;
    max_arena_bytes = max_int;
    cancel = None;
    countdown = max_int;
  }

let is_infinite b = b == infinite

let make ?wall_s ?deadline ?max_states ?max_arena_bytes ?cancel () =
  match (wall_s, deadline, max_states, max_arena_bytes, cancel) with
  | None, None, None, None, None -> infinite
  | _ ->
      let deadline =
        let abs = Option.value deadline ~default:Float.infinity in
        match wall_s with
        | None -> abs
        | Some s -> Float.min abs (Unix.gettimeofday () +. s)
      in
      {
        deadline;
        max_states = Option.value max_states ~default:max_int;
        max_arena_bytes = Option.value max_arena_bytes ~default:max_int;
        cancel;
        (* First probe on the first check: a budget that is already
           cancelled or past its deadline must not explore a full
           interval first. *)
        countdown = 0;
      }

let states_limited b = b.max_states < max_int
let arena_limited b = b.max_arena_bytes < max_int

(* Observability piggy-back on the amortised probe: the hook fires once
   per [probe_interval] checks with the exploration's current state count,
   so a telemetry layer (Obs.Heartbeat) can derive states/s without this
   library depending on it — and without adding anything to the per-state
   fast path. *)
let probe_hook : (states:int -> unit) ref = ref (fun ~states:_ -> ())
let set_probe_hook f = probe_hook := f

let slow_probe b =
  if (match b.cancel with Some c -> Cancel.triggered c | None -> false) then
    Some Cancelled
  else if
    b.deadline < Float.infinity && Unix.gettimeofday () > b.deadline
  then Some Deadline
  else None

let check b ~states ~arena_bytes =
  if b == infinite then None
  else if states > b.max_states then Some States
  else if arena_bytes > b.max_arena_bytes then Some Memory
  else begin
    let n = b.countdown in
    if n > 0 then begin
      b.countdown <- n - 1;
      None
    end
    else begin
      b.countdown <- probe_interval;
      !probe_hook ~states;
      slow_probe b
    end
  end

let exceeded b =
  if b == infinite then None
  else
    match slow_probe b with
    | Some _ as r -> r
    | None -> None
