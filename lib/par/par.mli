(** A fixed-size domain work-pool for fanning out independent analyses.

    The allocation strategy spends almost all of its time in mutually
    independent self-timed state-space explorations — one throughput check
    per candidate binding, per weight-ladder rung, per application. This
    module runs such task lists on a pool of worker domains (stdlib
    [Domain]/[Mutex]/[Condition] only; no external dependency) while
    keeping the result list in input order, so callers observe exactly the
    sequential semantics.

    The pool is process-global and sized by {!set_jobs}. The default is 1:
    no domain is ever spawned and {!map} degrades to [List.map], so
    sequential runs (and their outputs) are bit-identical to a build
    without this module. The submitting thread always participates in its
    own batch, so a pool of [n] jobs uses [n - 1] worker domains plus the
    caller, and nested {!map} calls from inside a task cannot deadlock:
    the nested caller can always drain its own batch alone.

    Tasks must not themselves hold locks shared with other tasks of the
    same batch. Exceptions raised by a task are re-raised in the caller —
    after the whole batch has finished — for the smallest failing input
    index, with the original backtrace. *)

val set_jobs : int -> unit
(** [set_jobs n] resizes the global pool to [n] concurrent jobs. [n <= 0]
    selects [Domain.recommended_domain_count ()]. [n = 1] (the initial
    state) shuts the pool down and makes every subsequent {!map}
    sequential. Existing workers are joined before new ones are spawned;
    must not be called concurrently with a running {!map}. *)

val jobs : unit -> int
(** The current pool size (>= 1). *)

val set_worker_hook : (int -> unit) -> unit
(** Install a callback run on each worker domain immediately after it is
    spawned (before it takes any task), with the worker's 0-based index.
    Affects pools created by subsequent {!set_jobs} calls. The CLIs use it
    to label worker tracks in timeline traces; the default is a no-op. *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element of [xs], in parallel when the
    pool has more than one job, and returns the results in input order.
    [f] runs exactly once per element whether or not a sibling raises. *)

val mapi : (int -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map}, passing the element index. *)

val map_reduce :
  map:('a -> 'b) -> combine:('acc -> 'b -> 'acc) -> init:'acc -> 'a list ->
  'acc
(** [map_reduce ~map ~combine ~init xs] maps in parallel, then folds the
    results left-to-right in input order — deterministic for any
    [combine], associative or not. *)

val cancel_scope : (Budget.Cancel.t -> 'a) -> 'a
(** [cancel_scope f] runs [f token] with a fresh cancellation token and
    triggers the token when [f] returns {e or raises}. A scope abandoned by
    an exception therefore cancels every {!map_cancellable} batch and every
    budgeted analysis it shared the token with: queued tasks drain without
    running, in-flight tasks observe the token at their next budget probe.
    [f] may also trigger the token itself (early exit on first success). *)

val map_cancellable :
  cancel:Budget.Cancel.t -> ('a -> 'b) -> 'a list -> 'b option list
(** [map_cancellable ~cancel f xs] is {!map} under a cancellation token:
    every element's slot is claimed exactly once, but a slot claimed after
    [cancel] was triggered yields [None] without running [f]; slots already
    executing run to completion and yield [Some _]. The output remains in
    input order and the call still waits for the whole batch, so executed
    plus skipped always equals [List.length xs] — cancellation can never
    lose or duplicate a task. Executed and skipped elements are counted in
    {!tasks_executed} / {!tasks_skipped} even on a sequential pool.
    Exceptions propagate as in {!map}. *)

val inside_task : unit -> bool
(** Whether the calling domain is currently executing a pool task. Used to
    gate {e speculative} nested fan-outs (cache warm-ups): inside a task
    the pool is typically saturated by the enclosing batch, so a nested
    batch would be drained by its submitter alone and the speculation
    would cost sequential time instead of exploiting idle cores. Required
    nested {!map} calls remain fine — they are merely not faster. *)

val tasks_executed : unit -> int
(** Tasks completed by {!map}/{!mapi}/{!map_reduce} batches with more than
    one element on a pool with more than one job, since process start
    (plus every element actually executed by {!map_cancellable}, pool or
    not). 0 while the pool has never been active — the CLIs export this as
    the ["pool.tasks"] telemetry counter. *)

val tasks_skipped : unit -> int
(** Tasks drained without running because their batch's cancellation token
    had been triggered by the time their slot was claimed. Exported as the
    ["pool.skipped"] telemetry counter. *)

val batches_executed : unit -> int
(** Parallel batches completed since process start. *)
