(* A fixed-size domain work-pool built on the stdlib only ([Domain],
   [Mutex], [Condition], [Atomic]); domainslib is outside the sanctioned
   dependency set.

   Design: one global pool of [jobs - 1] worker domains blocked on a shared
   task queue. A batch ([map]) turns its input list into an array of slots;
   helper closures — one per worker, plus the submitting thread itself —
   repeatedly claim the next unclaimed slot index and execute it. Results
   land in their slot, so the output order is the input order regardless of
   scheduling. The submitter always helps with its own batch, which gives
   two properties for free:

   - [jobs = 1] spawns no domain at all and runs strictly sequentially;
   - a task that itself calls [map] (nested parallelism) can always drain
     its nested batch alone, so the pool cannot deadlock on nesting: every
     wait is on a batch with at least one slot currently executing, and the
     deepest in-flight batch only runs non-nesting tasks.

   Stale helpers (left in the queue after their batch completed) find no
   unclaimed slot and return immediately.

   Cancellation is cooperative and batch-local: a [map_cancellable] batch
   carries a [Budget.Cancel.t]; a slot claimed after the token fired is
   marked [Skipped] without running its function, while in-flight tasks
   keep running (they observe the same token through their own budget
   probes). Every slot is still claimed exactly once and the batch still
   waits for all of them, so accounting is exact: executed + skipped =
   batch size. *)

type pool = {
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  size : int;  (* total jobs, including the submitting thread *)
}

let tasks_counter = Atomic.make 0
let skipped_counter = Atomic.make 0
let batches_counter = Atomic.make 0
let current : pool option ref = ref None

(* Whether the current domain is executing a pool task right now. Callers
   use this to skip *speculative* nested fan-outs: when every worker is
   busy with the enclosing batch, a nested batch is drained by its
   submitter alone, so optional speculation inside a task costs sequential
   time instead of using idle cores. *)
let inside_task_key = Domain.DLS.new_key (fun () -> ref false)
let inside_task () = !(Domain.DLS.get inside_task_key)

(* Called on each worker domain right after it is spawned, with the
   worker's 0-based index. The CLIs use it to label the worker's track in
   timeline traces (Obs.Trace.set_thread_name) without this library
   depending on the telemetry layer. *)
let worker_hook : (int -> unit) ref = ref (fun _ -> ())
let set_worker_hook f = worker_hook := f

let worker pool () =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.work_available pool.mutex
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* stop *)
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      task ();
      loop ()
    end
  in
  loop ()

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let jobs () = match !current with None -> 1 | Some p -> p.size

let set_jobs n =
  let n = if n <= 0 then Domain.recommended_domain_count () else n in
  if n <> jobs () then begin
    (match !current with None -> () | Some p -> shutdown p);
    if n = 1 then current := None
    else begin
      let pool =
        {
          mutex = Mutex.create ();
          work_available = Condition.create ();
          queue = Queue.create ();
          stop = false;
          domains = [];
          size = n;
        }
      in
      pool.domains <-
        List.init (n - 1) (fun i ->
            Domain.spawn (fun () ->
                !worker_hook i;
                worker pool ()));
      current := Some pool
    end
  end

(* One batch: slots are claimed under [b_mutex]; the result write and the
   completion count share the same critical section, so the submitter's
   final reads of [results] happen after every writer released the lock. *)
type 'b slot =
  | Empty
  | Ok_ of 'b
  | Err of exn * Printexc.raw_backtrace
  | Skipped

let run_batch ?cancel pool f items =
  let n = Array.length items in
  let results = Array.make n Empty in
  let b_mutex = Mutex.create () in
  let b_finished = Condition.create () in
  let next = ref 0 in
  let completed = ref 0 in
  let exec i =
    let r =
      match cancel with
      | Some c when Budget.Cancel.triggered c ->
          Atomic.incr skipped_counter;
          Skipped
      | _ ->
          let inside = Domain.DLS.get inside_task_key in
          let saved = !inside in
          inside := true;
          let r =
            try Ok_ (f items.(i))
            with e -> Err (e, Printexc.get_raw_backtrace ())
          in
          inside := saved;
          Atomic.incr tasks_counter;
          r
    in
    Mutex.lock b_mutex;
    results.(i) <- r;
    incr completed;
    if !completed = n then Condition.broadcast b_finished;
    Mutex.unlock b_mutex
  in
  let rec help () =
    Mutex.lock b_mutex;
    if !next >= n then Mutex.unlock b_mutex
    else begin
      let i = !next in
      incr next;
      Mutex.unlock b_mutex;
      exec i;
      help ()
    end
  in
  Mutex.lock pool.mutex;
  for _ = 2 to min pool.size n do
    Queue.push help pool.queue
  done;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mutex;
  help ();
  Mutex.lock b_mutex;
  while !completed < n do
    Condition.wait b_finished b_mutex
  done;
  Mutex.unlock b_mutex;
  Atomic.incr batches_counter;
  Array.iter
    (function
      | Err (e, bt) -> Printexc.raise_with_backtrace e bt
      | Ok_ _ | Empty | Skipped -> ())
    results;
  results

let mapi f xs =
  match (!current, xs) with
  | None, _ | _, ([] | [ _ ]) -> List.mapi f xs
  | Some pool, xs ->
      let items = Array.of_list xs in
      run_batch pool (fun (i, x) -> f i x) (Array.mapi (fun i x -> (i, x)) items)
      |> Array.map (function Ok_ v -> v | Empty | Err _ | Skipped -> assert false)
      |> Array.to_list

let map f xs = mapi (fun _ x -> f x) xs

let map_reduce ~map:f ~combine ~init xs =
  List.fold_left combine init (map f xs)

let cancel_scope f =
  let c = Budget.Cancel.create () in
  Fun.protect ~finally:(fun () -> Budget.Cancel.trigger c) (fun () -> f c)

let map_cancellable ~cancel f xs =
  let seq () =
    List.map
      (fun x ->
        if Budget.Cancel.triggered cancel then begin
          Atomic.incr skipped_counter;
          None
        end
        else begin
          let v = f x in
          Atomic.incr tasks_counter;
          Some v
        end)
      xs
  in
  match (!current, xs) with
  | None, _ | _, ([] | [ _ ]) -> seq ()
  | Some pool, xs ->
      run_batch ~cancel pool f (Array.of_list xs)
      |> Array.map (function
           | Ok_ v -> Some v
           | Skipped -> None
           | Empty | Err _ -> assert false)
      |> Array.to_list

let tasks_executed () = Atomic.get tasks_counter
let tasks_skipped () = Atomic.get skipped_counter
let batches_executed () = Atomic.get batches_counter
