(** Static HTML run reports over the observability outputs: one or more
    [lib/obs] metrics registries (JSON, schema 1 or 2), [sdf3_batch] JSONL
    journals and timeline trace files, aggregated into a single
    self-contained dashboard — per-phase timing tables (timers merged
    across registries, stddev included), counter/gauge/histogram tables
    with inline SVG sparklines, budget-trip and partial-outcome summaries,
    and links to the raw traces. No external assets: the page is one file
    an operator can archive next to the journal it describes. *)

type registry

val registry_of_json : label:string -> Obs.Json.t -> (registry, string) result
(** Parse one serialized registry ([Obs.snapshot_json] shape). [label]
    names the source in multi-registry reports (typically the file name).
    Schema 1 documents (no histograms, scalar [events_dropped]) are
    accepted. *)

type journal

val journal_of_string :
  label:string -> string -> (journal, string) result
(** Parse an [sdf3_batch] journal: one JSON object per line
    ([{"case":...,"status":...}]), blank lines ignored. Fails on the first
    malformed line. *)

val html :
  ?title:string ->
  registries:registry list ->
  journals:journal list ->
  traces:string list ->
  unit ->
  string
(** Render the dashboard. [traces] are paths linked (not inlined) in the
    trace section. Deterministic for fixed inputs: no timestamps or
    environment data are embedded, so report output is testable byte for
    byte. *)
