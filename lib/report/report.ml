(* HTML run-report generator. Everything here is plain string assembly on
   the parsed JSON documents — deterministic output (no clocks, no
   environment) so the cram tests can grep the markup, and one
   self-contained page so a report can be archived next to its journal. *)

module Json = Obs.Json

(* ------------------------------------------------------------------ *)
(* Input models                                                        *)

type timer = {
  tm_count : int;
  tm_total : float;
  tm_mean : float;
  tm_m2 : float; (* Welford M2 = stddev^2 * count, mergeable *)
  tm_min : float;
  tm_max : float;
}

type hist = {
  hs_count : int;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
  hs_max : float;
}

type registry = {
  r_label : string;
  r_counters : (string * int) list;
  r_gauges : (string * float) list;
  r_timers : (string * timer) list;
  r_hists : (string * hist) list;
  r_event_kinds : (string * int) list; (* kind -> stored events *)
  r_dropped : (string * int) list; (* kind -> dropped events *)
}

type case = {
  c_case : string;
  c_status : string;
  c_reason : string option;
  c_throughput : string option;
  c_message : string option;
}

type journal = { j_label : string; j_cases : case list }

let num = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let as_int = function
  | Json.Int i -> Some i
  | Json.Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let field j k = Json.member k j
let numf j k d = match field j k with Some v -> Option.value ~default:d (num v) | None -> d
let intf j k d = match field j k with Some v -> Option.value ~default:d (as_int v) | None -> d

let strf j k =
  match field j k with Some (Json.String s) -> Some s | _ -> None

let registry_of_json ~label j =
  match j with
  | Json.Assoc _ ->
      let section k =
        match field j k with Some (Json.Assoc kvs) -> kvs | _ -> []
      in
      let counters =
        List.filter_map
          (fun (k, v) -> Option.map (fun i -> (k, i)) (as_int v))
          (section "counters")
      in
      let gauges =
        List.filter_map
          (fun (k, v) -> Option.map (fun f -> (k, f)) (num v))
          (section "gauges")
      in
      let timers =
        List.map
          (fun (k, v) ->
            let count = intf v "count" 0 in
            let stddev = numf v "stddev_s" 0. in
            ( k,
              {
                tm_count = count;
                tm_total = numf v "total_s" 0.;
                tm_mean = numf v "mean_s" 0.;
                tm_m2 = stddev *. stddev *. float_of_int count;
                tm_min = numf v "min_s" 0.;
                tm_max = numf v "max_s" 0.;
              } ))
          (section "timers")
      in
      let hists =
        List.map
          (fun (k, v) ->
            ( k,
              {
                hs_count = intf v "count" 0;
                hs_p50 = numf v "p50" 0.;
                hs_p90 = numf v "p90" 0.;
                hs_p99 = numf v "p99" 0.;
                hs_max = numf v "max" 0.;
              } ))
          (section "histograms")
      in
      let event_kinds =
        let tbl = Hashtbl.create 16 in
        (match field j "events" with
        | Some (Json.List evs) ->
            List.iter
              (fun ev ->
                match strf ev "kind" with
                | Some kind ->
                    Hashtbl.replace tbl kind
                      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl kind))
                | None -> ())
              evs
        | _ -> ());
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
        |> List.sort compare
      in
      let dropped =
        match field j "events_dropped" with
        | Some (Json.Assoc kvs) ->
            List.filter_map
              (fun (k, v) -> Option.map (fun i -> (k, i)) (as_int v))
              kvs
        (* Schema 1: one global count. *)
        | Some v -> (
            match as_int v with
            | Some n when n > 0 -> [ ("(all kinds)", n) ]
            | _ -> [])
        | None -> []
      in
      Ok
        {
          r_label = label;
          r_counters = counters;
          r_gauges = gauges;
          r_timers = timers;
          r_hists = hists;
          r_event_kinds = event_kinds;
          r_dropped = dropped;
        }
  | _ -> Error (label ^ ": registry is not a JSON object")

let journal_of_string ~label text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok { j_label = label; j_cases = List.rev acc }
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" then go acc (lineno + 1) rest
        else begin
          match Json.parse trimmed with
          | Error e ->
              Error (Printf.sprintf "%s:%d: %s" label lineno e)
          | Ok j -> (
              match (strf j "case", strf j "status") with
              | Some c, Some s ->
                  let case =
                    {
                      c_case = c;
                      c_status = s;
                      c_reason = strf j "reason";
                      c_throughput = strf j "throughput";
                      c_message = strf j "message";
                    }
                  in
                  go (case :: acc) (lineno + 1) rest
              | _ ->
                  Error
                    (Printf.sprintf "%s:%d: missing case/status field" label
                       lineno))
        end
  in
  go [] 1 lines

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)

let merge_timer a b =
  if a.tm_count = 0 then b
  else if b.tm_count = 0 then a
  else begin
    let na = float_of_int a.tm_count and nb = float_of_int b.tm_count in
    let n = na +. nb in
    let delta = b.tm_mean -. a.tm_mean in
    {
      tm_count = a.tm_count + b.tm_count;
      tm_total = a.tm_total +. b.tm_total;
      tm_mean = ((a.tm_mean *. na) +. (b.tm_mean *. nb)) /. n;
      tm_m2 = a.tm_m2 +. b.tm_m2 +. (delta *. delta *. na *. nb /. n);
      tm_min = Float.min a.tm_min b.tm_min;
      tm_max = Float.max a.tm_max b.tm_max;
    }
  end

let merged_assoc merge rows =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | None ->
          Hashtbl.add tbl k v;
          order := k :: !order
      | Some prev -> Hashtbl.replace tbl k (merge prev v))
    rows;
  List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order
  |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

(* Per-source naming for values that cannot be merged across registries
   (gauges are last-value-wins, histogram quantiles are not mergeable). *)
let labelled multi label k = if multi then label ^ " : " ^ k else k

(* ------------------------------------------------------------------ *)
(* HTML assembly                                                       *)

let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fnum v =
  if Float.is_integer v && Float.abs v < 1e9 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let fsec v = Printf.sprintf "%.6f" v

(* Inline bar sparkline; integer coordinates keep the markup stable. *)
let sparkline ?(width = 120) ?(height = 20) values =
  let n = List.length values in
  if n = 0 then
    Printf.sprintf "<svg class=\"sparkline\" width=\"%d\" height=\"%d\"></svg>"
      width height
  else begin
    let vmax = List.fold_left Float.max 0. values in
    let bw = max 1 ((width / n) - 1) in
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "<svg class=\"sparkline\" width=\"%d\" height=\"%d\">"
         width height);
    List.iteri
      (fun i v ->
        let h =
          if vmax <= 0. then 1
          else max 1 (int_of_float (v /. vmax *. float_of_int (height - 1)))
        in
        Buffer.add_string b
          (Printf.sprintf
             "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\"></rect>"
             (i * (bw + 1))
             (height - h) bw h))
      values;
    Buffer.add_string b "</svg>";
    Buffer.contents b
  end

let table ?id ~header rows =
  let b = Buffer.create 1024 in
  (match id with
  | Some id -> Buffer.add_string b (Printf.sprintf "<table id=%S>" id)
  | None -> Buffer.add_string b "<table>");
  Buffer.add_string b "<thead><tr>";
  List.iter
    (fun h -> Buffer.add_string b (Printf.sprintf "<th>%s</th>" h))
    header;
  Buffer.add_string b "</tr></thead><tbody>";
  List.iter
    (fun row ->
      Buffer.add_string b "<tr>";
      List.iter
        (fun cell -> Buffer.add_string b (Printf.sprintf "<td>%s</td>" cell))
        row;
      Buffer.add_string b "</tr>\n")
    rows;
  Buffer.add_string b "</tbody></table>";
  Buffer.contents b

let section title body =
  Printf.sprintf "<section><h2>%s</h2>\n%s</section>\n" (esc title) body

(* "123/456" or "123" from Rat.to_string. *)
let rat_to_float s =
  match String.index_opt s '/' with
  | None -> float_of_string_opt s
  | Some i -> (
      let a = String.sub s 0 i in
      let d = String.sub s (i + 1) (String.length s - i - 1) in
      match (float_of_string_opt a, float_of_string_opt d) with
      | Some a, Some d when d <> 0. -> Some (a /. d)
      | _ -> None)

let style =
  {|body{font-family:system-ui,sans-serif;margin:2em auto;max-width:72em;
padding:0 1em;color:#1c2733}
h1{border-bottom:2px solid #2a6;padding-bottom:.3em}
h2{margin-top:1.6em;color:#254}
table{border-collapse:collapse;margin:.5em 0}
th,td{border:1px solid #cdd5dc;padding:.25em .6em;text-align:left;
font-variant-numeric:tabular-nums}
th{background:#eef3f6}
tr:nth-child(even) td{background:#f7fafb}
svg.sparkline rect{fill:#2a6}
svg.sharebar rect.bg{fill:#e4ebef}
svg.sharebar rect.fg{fill:#47b}
.cards{display:flex;gap:1em;flex-wrap:wrap}
.card{border:1px solid #cdd5dc;border-radius:.4em;padding:.6em 1em;
min-width:9em;background:#f7fafb}
.card b{display:block;font-size:1.5em}
.muted{color:#66727d}|}

let share_bar frac =
  let w = 120 and h = 10 in
  let fw = max 1 (int_of_float (frac *. float_of_int w)) in
  Printf.sprintf
    "<svg class=\"sharebar\" width=\"%d\" height=\"%d\"><rect class=\"bg\" \
     x=\"0\" y=\"0\" width=\"%d\" height=\"%d\"></rect><rect class=\"fg\" \
     x=\"0\" y=\"0\" width=\"%d\" height=\"%d\"></rect></svg>"
    w h w h fw h

let card label value =
  Printf.sprintf "<div class=\"card\"><b>%s</b>%s</div>" (esc value)
    (esc label)

let phase_table registries =
  let merged =
    merged_assoc merge_timer (List.concat_map (fun r -> r.r_timers) registries)
  in
  let grand_total =
    List.fold_left (fun acc (_, t) -> acc +. t.tm_total) 0. merged
  in
  let rows =
    merged
    |> List.sort (fun (_, a) (_, b) -> compare b.tm_total a.tm_total)
    |> List.map (fun (k, t) ->
           let stddev =
             if t.tm_count = 0 then 0.
             else sqrt (t.tm_m2 /. float_of_int t.tm_count)
           in
           [
             esc k;
             string_of_int t.tm_count;
             fsec t.tm_total;
             fsec (if t.tm_count = 0 then 0. else t.tm_total /. float_of_int t.tm_count);
             fsec stddev;
             fsec t.tm_min;
             fsec t.tm_max;
             share_bar
               (if grand_total <= 0. then 0. else t.tm_total /. grand_total);
           ])
  in
  if rows = [] then "<p class=\"muted\">no timers recorded</p>"
  else
    table ~id:"phase-table"
      ~header:
        [
          "phase"; "count"; "total s"; "mean s"; "stddev s"; "min s"; "max s";
          "share";
        ]
      rows

let counters_table registries =
  let merged =
    merged_assoc ( + ) (List.concat_map (fun r -> r.r_counters) registries)
  in
  if merged = [] then "<p class=\"muted\">no counters recorded</p>"
  else
    table ~id:"counters"
      ~header:[ "counter"; "value" ]
      (List.map (fun (k, v) -> [ esc k; string_of_int v ]) merged)

let gauges_table registries =
  let multi = List.length registries > 1 in
  let rows =
    List.concat_map
      (fun r ->
        List.map
          (fun (k, v) -> [ esc (labelled multi r.r_label k); fnum v ])
          r.r_gauges)
      registries
  in
  if rows = [] then "<p class=\"muted\">no gauges recorded</p>"
  else table ~id:"gauges" ~header:[ "gauge"; "value" ] rows

(* Per-shard sweep telemetry (the [engine.shard.<i>.*] gauges of the
   sharded frontier sweep): one row per shard so a skewed ownership hash
   is visible at a glance, with the summary imbalance gauge (max owned /
   mean owned; 1.0 is a perfect split) alongside. Empty when no run in
   the input used [analyze_parallel]. *)
let shards_table registries =
  let parse_shard k =
    let p = "engine.shard." in
    if not (String.starts_with ~prefix:p k) then None
    else
      let rest =
        String.sub k (String.length p) (String.length k - String.length p)
      in
      match String.index_opt rest '.' with
      | None -> None
      | Some d -> (
          match int_of_string_opt (String.sub rest 0 d) with
          | None -> None
          | Some i ->
              Some (i, String.sub rest (d + 1) (String.length rest - d - 1)))
  in
  let multi = List.length registries > 1 in
  let blocks =
    List.filter_map
      (fun r ->
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun (k, v) ->
            match parse_shard k with
            | None -> ()
            | Some (i, f) ->
                let occ, probe, bytes =
                  Option.value (Hashtbl.find_opt tbl i) ~default:(0., 0., 0.)
                in
                Hashtbl.replace tbl i
                  (match f with
                  | "occupancy" -> (v, probe, bytes)
                  | "max_probe" -> (occ, v, bytes)
                  | "arena_bytes" -> (occ, probe, v)
                  | _ -> (occ, probe, bytes)))
          r.r_gauges;
        if Hashtbl.length tbl = 0 then None
        else begin
          let ids =
            Hashtbl.fold (fun i _ acc -> i :: acc) tbl [] |> List.sort compare
          in
          let max_occ =
            List.fold_left
              (fun m i ->
                let o, _, _ = Hashtbl.find tbl i in
                Float.max m o)
              0. ids
          in
          let rows =
            List.map
              (fun i ->
                let occ, probe, bytes = Hashtbl.find tbl i in
                [
                  string_of_int i;
                  fnum occ;
                  share_bar (if max_occ <= 0. then 0. else occ /. max_occ);
                  fnum probe;
                  fnum bytes;
                ])
              ids
          in
          let caption =
            let imb =
              match List.assoc_opt "engine.shard_imbalance" r.r_gauges with
              | Some v -> Printf.sprintf "imbalance (max/mean) %s" (fnum v)
              | None -> "imbalance not recorded"
            in
            Printf.sprintf "<p>%s &mdash; %d shard(s), %s</p>"
              (esc (labelled multi r.r_label "sharded sweep"))
              (List.length ids) (esc imb)
          in
          Some
            (caption
            ^ table ~id:"shards"
                ~header:
                  [ "shard"; "occupancy"; "relative"; "max probe"; "arena bytes" ]
                rows)
        end)
      registries
  in
  String.concat "\n" blocks

let hists_table registries =
  let multi = List.length registries > 1 in
  let rows =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun (k, h) ->
            if h.hs_count = 0 then None
            else
              Some
                [
                  esc (labelled multi r.r_label k);
                  string_of_int h.hs_count;
                  fnum h.hs_p50;
                  fnum h.hs_p90;
                  fnum h.hs_p99;
                  fnum h.hs_max;
                  sparkline [ h.hs_p50; h.hs_p90; h.hs_p99; h.hs_max ];
                ])
          r.r_hists)
      registries
  in
  if rows = [] then "<p class=\"muted\">no histogram samples recorded</p>"
  else
    table ~id:"histograms"
      ~header:[ "histogram"; "count"; "p50"; "p90"; "p99"; "max"; "quantiles" ]
      rows

(* Budget trips: the budget.* counters plus journal partial outcomes. *)
let budget_section registries journals =
  let counters =
    merged_assoc ( + ) (List.concat_map (fun r -> r.r_counters) registries)
  in
  let budget_counters =
    List.filter
      (fun (k, v) ->
        v > 0
        && String.length k > 7
        && String.sub k 0 7 = "budget.")
      counters
  in
  let partial_reasons =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun j ->
        List.iter
          (fun c ->
            if c.c_status = "partial" then begin
              let r = Option.value ~default:"unknown" c.c_reason in
              Hashtbl.replace tbl r
                (1 + Option.value ~default:0 (Hashtbl.find_opt tbl r))
            end)
          j.j_cases)
      journals;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  let b = Buffer.create 256 in
  if budget_counters = [] && partial_reasons = [] then
    Buffer.add_string b
      "<p class=\"muted\">no budget trips or partial outcomes</p>"
  else begin
    if budget_counters <> [] then
      Buffer.add_string b
        (table ~id:"budget-trips"
           ~header:[ "budget counter"; "value" ]
           (List.map
              (fun (k, v) -> [ esc k; string_of_int v ])
              budget_counters));
    if partial_reasons <> [] then
      Buffer.add_string b
        (table ~id:"partial-outcomes"
           ~header:[ "partial reason (journal)"; "cases" ]
           (List.map
              (fun (k, v) -> [ esc k; string_of_int v ])
              partial_reasons))
  end;
  Buffer.contents b

let events_section registries =
  let kinds =
    merged_assoc ( + ) (List.concat_map (fun r -> r.r_event_kinds) registries)
  in
  let dropped =
    merged_assoc ( + ) (List.concat_map (fun r -> r.r_dropped) registries)
  in
  let lookup_dropped k =
    Option.value ~default:0 (List.assoc_opt k dropped)
  in
  let all_kinds =
    merged_assoc ( + )
      (List.map (fun (k, _) -> (k, 0)) dropped @ kinds)
  in
  if all_kinds = [] then "<p class=\"muted\">no events recorded</p>"
  else
    table ~id:"events"
      ~header:[ "event kind"; "stored"; "dropped" ]
      (List.map
         (fun (k, stored) ->
           [ esc k; string_of_int stored; string_of_int (lookup_dropped k) ])
         all_kinds)

let journal_section j =
  let count st =
    List.length (List.filter (fun c -> c.c_status = st) j.j_cases)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b "<div class=\"cards\">";
  List.iter
    (fun st ->
      Buffer.add_string b (card st (string_of_int (count st))))
    [ "allocated"; "partial"; "failed"; "error" ];
  Buffer.add_string b (card "total cases" (string_of_int (List.length j.j_cases)));
  Buffer.add_string b "</div>\n";
  let throughputs =
    List.filter_map
      (fun c ->
        match (c.c_status, c.c_throughput) with
        | "allocated", Some t -> rat_to_float t
        | _ -> None)
      j.j_cases
  in
  if throughputs <> [] then
    Buffer.add_string b
      (Printf.sprintf
         "<p>allocated throughput per case (journal order): %s</p>\n"
         (sparkline ~width:240 throughputs));
  let problem_cases =
    List.filter (fun c -> c.c_status <> "allocated") j.j_cases
  in
  if problem_cases <> [] then
    Buffer.add_string b
      (table
         ~header:[ "case"; "status"; "detail" ]
         (List.map
            (fun c ->
              let detail =
                match (c.c_reason, c.c_message) with
                | Some r, _ -> r
                | None, Some m -> m
                | None, None -> ""
              in
              [ esc c.c_case; esc c.c_status; esc detail ])
            problem_cases));
  Buffer.contents b

let traces_section traces =
  if traces = [] then "<p class=\"muted\">no trace files linked</p>"
  else
    "<ul>"
    ^ String.concat ""
        (List.map
           (fun t ->
             Printf.sprintf
               "<li><a href=%S>%s</a> <span class=\"muted\">(open in \
                Perfetto / chrome://tracing)</span></li>"
               (esc t) (esc t))
           traces)
    ^ "</ul>"

let html ?(title = "sdfalloc run report") ~registries ~journals ~traces () =
  let b = Buffer.create 16_384 in
  Buffer.add_string b "<!DOCTYPE html>\n<html lang=\"en\"><head>\n";
  Buffer.add_string b "<meta charset=\"utf-8\">\n";
  Buffer.add_string b (Printf.sprintf "<title>%s</title>\n" (esc title));
  Buffer.add_string b (Printf.sprintf "<style>%s</style>\n" style);
  Buffer.add_string b "</head><body>\n";
  Buffer.add_string b (Printf.sprintf "<h1>%s</h1>\n" (esc title));
  let total_cases =
    List.fold_left (fun acc j -> acc + List.length j.j_cases) 0 journals
  in
  Buffer.add_string b "<div class=\"cards\">";
  Buffer.add_string b
    (card "metrics registries" (string_of_int (List.length registries)));
  Buffer.add_string b (card "journals" (string_of_int (List.length journals)));
  Buffer.add_string b (card "journal cases" (string_of_int total_cases));
  Buffer.add_string b (card "traces" (string_of_int (List.length traces)));
  Buffer.add_string b "</div>\n";
  if registries <> [] then begin
    Buffer.add_string b (section "Per-phase timing" (phase_table registries));
    Buffer.add_string b (section "Counters" (counters_table registries));
    Buffer.add_string b (section "Gauges" (gauges_table registries));
    (match shards_table registries with
    | "" -> ()
    | sh -> Buffer.add_string b (section "Shard balance" sh));
    Buffer.add_string b (section "Histograms" (hists_table registries))
  end;
  Buffer.add_string b
    (section "Budget trips & partial outcomes"
       (budget_section registries journals));
  if registries <> [] then
    Buffer.add_string b (section "Events" (events_section registries));
  List.iter
    (fun j ->
      Buffer.add_string b
        (section (Printf.sprintf "Batch journal: %s" j.j_label)
           (journal_section j)))
    journals;
  Buffer.add_string b (section "Timeline traces" (traces_section traces));
  Buffer.add_string b "</body></html>\n";
  Buffer.contents b
