(* Allocation-as-a-service. The daemon composes the subsystems the
   earlier PRs built for exactly this deployment: per-request [Budget]s
   derived from QoS tiers, the shared [Analysis.Memo] cache kept warm
   across requests, [Obs] counters/histograms/traces for the operator
   dashboard, and the batch JSONL journal as the durable request log.

   Layering: [Handler] is socket-free (a wire line in, a wire line out)
   so the unit tests drive admission, tier budgets and error isolation
   directly; [Daemon] adds the listeners, per-connection reader threads
   and the drain-aware accept loop. *)

module Json = Obs.Json
module Rat = Sdf.Rat
module Sdfg = Sdf.Sdfg

module Tier = struct
  type t = Interactive | Standard | Batch

  let all = [ Interactive; Standard; Batch ]

  let label = function
    | Interactive -> "interactive"
    | Standard -> "standard"
    | Batch -> "batch"

  let of_string = function
    | "interactive" -> Ok Interactive
    | "standard" -> Ok Standard
    | "batch" -> Ok Batch
    | s -> Error (Printf.sprintf "unknown tier %S" s)

  (* The wall deadline starts when the request starts executing (after
     admission), not when it was read off the socket. *)
  let budget ?cancel = function
    | Interactive -> Budget.make ~wall_s:1.0 ~max_states:200_000 ?cancel ()
    | Standard -> Budget.make ~wall_s:10.0 ~max_states:2_000_000 ?cancel ()
    | Batch -> Budget.make ?cancel ()
end

module Journal = struct
  let allocated ~case thr =
    Json.Assoc
      [
        ("case", Json.String case);
        ("status", Json.String "allocated");
        ("throughput", Json.String (Rat.to_string thr));
      ]

  let partial ~case reason =
    Json.Assoc
      [
        ("case", Json.String case);
        ("status", Json.String "partial");
        ("reason", Json.String (Budget.reason_label reason));
      ]

  let failed ~case label =
    Json.Assoc
      [
        ("case", Json.String case);
        ("status", Json.String "failed");
        ("reason", Json.String label);
      ]

  let error ~case msg =
    Json.Assoc
      [
        ("case", Json.String case);
        ("status", Json.String "error");
        ("message", Json.String msg);
      ]

  let failure_label = function
    | Core.Strategy.Bind_failed _ -> "bind_failed"
    | Core.Strategy.Schedule_failed -> "schedule_failed"
    | Core.Strategy.Slice_failed _ -> "slice_failed"
    | Core.Strategy.Budget_exhausted _ -> "budget_exhausted"

  let of_flow_result ~case (r : Core.Flow.result) =
    match r.Core.Flow.allocation with
    | Some alloc -> allocated ~case alloc.Core.Strategy.throughput
    | None -> (
        match List.rev r.Core.Flow.attempts with
        | {
            Core.Flow.outcome =
              Error (Core.Strategy.Budget_exhausted reason);
            _;
          }
          :: _ ->
            partial ~case reason
        | { Core.Flow.outcome = Error f; _ } :: _ ->
            failed ~case (failure_label f)
        | _ -> failed ~case "no_attempt")

  let to_line = Json.to_compact_string
end

module Admission = struct
  (* Two occupancy classes: [normal] (standard/batch) may only use the
     general slots (capacity - reserved); [privileged] (interactive) may
     use the whole window, so [reserved] slots are always available to it
     no matter how much batch traffic is in flight. *)
  type t = {
    mutex : Mutex.t;
    idle : Condition.t;
    capacity : int;
    reserved : int;
    mutable normal : int;
    mutable privileged : int;
    mutable control : int;
    mutable draining : bool;
    c_reserved_admits : Obs.Counter.t;
    c_normal_blocked : Obs.Counter.t;
  }

  type decision = Admitted | Overloaded | Draining

  let create ?(reserved = 0) ~capacity () =
    let capacity = max 1 capacity in
    let reserved = min (max 0 reserved) (capacity - 1) in
    {
      mutex = Mutex.create ();
      idle = Condition.create ();
      capacity;
      reserved;
      normal = 0;
      privileged = 0;
      control = 0;
      draining = false;
      c_reserved_admits = Obs.Counter.make "server.preempt.reserved_admits";
      c_normal_blocked = Obs.Counter.make "server.preempt.normal_blocked";
    }

  let capacity t = t.capacity
  let reserved t = t.reserved

  let try_admit ?(privileged = false) t =
    Mutex.lock t.mutex;
    let d =
      if t.draining then Draining
      else begin
        let total = t.normal + t.privileged in
        if privileged then
          if total >= t.capacity then Overloaded
          else begin
            (* The general pool was full: this admission went through on
               the strength of the reserve. *)
            if total >= t.capacity - t.reserved then
              Obs.Counter.incr t.c_reserved_admits;
            t.privileged <- t.privileged + 1;
            Admitted
          end
        else if t.normal >= t.capacity - t.reserved || total >= t.capacity
        then begin
          (* Slots were free but they are reserved for interactive. *)
          if total < t.capacity then Obs.Counter.incr t.c_normal_blocked;
          Overloaded
        end
        else begin
          t.normal <- t.normal + 1;
          Admitted
        end
      end
    in
    Mutex.unlock t.mutex;
    d

  let release ?(privileged = false) t =
    Mutex.lock t.mutex;
    if privileged then t.privileged <- t.privileged - 1
    else t.normal <- t.normal - 1;
    if t.normal + t.privileged = 0 && t.control = 0 then
      Condition.broadcast t.idle;
    Mutex.unlock t.mutex

  let enter_control t =
    Mutex.lock t.mutex;
    t.control <- t.control + 1;
    Mutex.unlock t.mutex

  let exit_control t =
    Mutex.lock t.mutex;
    t.control <- t.control - 1;
    if t.normal + t.privileged = 0 && t.control = 0 then
      Condition.broadcast t.idle;
    Mutex.unlock t.mutex

  let in_flight t =
    Mutex.lock t.mutex;
    let n = t.normal + t.privileged in
    Mutex.unlock t.mutex;
    n

  let normal_in_flight t =
    Mutex.lock t.mutex;
    let n = t.normal in
    Mutex.unlock t.mutex;
    n

  let privileged_in_flight t =
    Mutex.lock t.mutex;
    let n = t.privileged in
    Mutex.unlock t.mutex;
    n

  let begin_drain t =
    Mutex.lock t.mutex;
    t.draining <- true;
    Mutex.unlock t.mutex

  let draining t =
    Mutex.lock t.mutex;
    let d = t.draining in
    Mutex.unlock t.mutex;
    d

  let wait_idle t =
    Mutex.lock t.mutex;
    while t.normal + t.privileged > 0 || t.control > 0 do
      Condition.wait t.idle t.mutex
    done;
    Mutex.unlock t.mutex
end

(* The execution queue behind per-connection pipelining: reader threads
   submit admitted work here, a fixed pool of worker threads drains it.
   Two FIFO classes — privileged (interactive) jobs always dequeue before
   normal ones, and arrival order is preserved within each class. The
   admission window bounds the queue (a job is only submitted after
   [Admission.try_admit]), so the queue cannot grow past [capacity]. *)
module Workqueue = struct
  type t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    priv : (unit -> unit) Queue.t;
    norm : (unit -> unit) Queue.t;
    mutable closed : bool;
  }

  let create () =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      priv = Queue.create ();
      norm = Queue.create ();
      closed = false;
    }

  let length t =
    Mutex.lock t.mutex;
    let n = Queue.length t.priv + Queue.length t.norm in
    Mutex.unlock t.mutex;
    n

  let submit t ~privileged f =
    Mutex.lock t.mutex;
    if t.closed then begin
      (* Shutdown fallback: run in the caller so no admitted request is
         ever dropped on the floor. *)
      Mutex.unlock t.mutex;
      f ()
    end
    else begin
      Queue.push f (if privileged then t.priv else t.norm);
      Condition.signal t.nonempty;
      Mutex.unlock t.mutex
    end

  let pop_locked t =
    if not (Queue.is_empty t.priv) then Some (Queue.pop t.priv)
    else if not (Queue.is_empty t.norm) then Some (Queue.pop t.norm)
    else None

  let try_take t =
    Mutex.lock t.mutex;
    let r = pop_locked t in
    Mutex.unlock t.mutex;
    r

  let take t =
    Mutex.lock t.mutex;
    let rec go () =
      match pop_locked t with
      | Some _ as r -> r
      | None ->
          if t.closed then None
          else begin
            Condition.wait t.nonempty t.mutex;
            go ()
          end
    in
    let r = go () in
    Mutex.unlock t.mutex;
    r

  let close t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex
end

module Request = struct
  type verb =
    | Ping
    | Status
    | Stats
    | Drain
    | Sleep of { ms : int }
    | Analyze of { file : string }
    | Flow of { file : string; platform : string }

  type t = { id : string option; verb : verb; tier : Tier.t }

  let verb_label = function
    | Ping -> "ping"
    | Status -> "status"
    | Stats -> "stats"
    | Drain -> "drain"
    | Sleep _ -> "sleep"
    | Analyze _ -> "analyze"
    | Flow _ -> "flow"

  let str_field j name =
    match Json.member name j with
    | Some (Json.String s) -> Ok (Some s)
    | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
    | None -> Ok None

  let ( let* ) = Result.bind

  let of_json j =
    match j with
    | Json.Assoc _ ->
        let* id = str_field j "id" in
        let* verb_name =
          match str_field j "verb" with
          | Ok (Some v) -> Ok v
          | Ok None -> Error "missing field \"verb\""
          | Error _ as e -> e
        in
        let* tier =
          match str_field j "tier" with
          | Ok None -> Ok Tier.Standard
          | Ok (Some s) -> Tier.of_string s
          | Error _ as e -> e
        in
        let* file =
          match str_field j "file" with
          | Ok f -> Ok f
          | Error _ as e -> e
        in
        let require_file verb =
          match file with
          | Some f -> Ok f
          | None ->
              Error (Printf.sprintf "verb %S requires field \"file\"" verb)
        in
        let* verb =
          match verb_name with
          | "ping" -> Ok Ping
          | "status" -> Ok Status
          | "stats" -> Ok Stats
          | "drain" -> Ok Drain
          | "sleep" -> (
              match Json.member "ms" j with
              | Some (Json.Int ms) when ms >= 0 -> Ok (Sleep { ms })
              | _ -> Error "verb \"sleep\" requires integer field \"ms\"")
          | "analyze" ->
              let* f = require_file "analyze" in
              Ok (Analyze { file = f })
          | "flow" ->
              let* f = require_file "flow" in
              let* platform =
                match str_field j "platform" with
                | Ok None -> Ok "multimedia"
                | Ok (Some p) -> Ok p
                | Error _ as e -> e
              in
              Ok (Flow { file = f; platform })
          | v -> Error (Printf.sprintf "unknown verb %S" v)
        in
        Ok { id; verb; tier }
    | _ -> Error "request must be a JSON object"

  let of_line line =
    match Json.parse line with
    | Error msg -> Error (Printf.sprintf "parse error: %s" msg)
    | Ok j -> of_json j
end

let platform_of_string = function
  | "example" -> Ok (Appmodel.Models.example_platform ())
  | "multimedia" -> Ok (Appmodel.Models.multimedia_platform ())
  | "mesh3x3" -> Ok (Gen.Benchsets.architecture 0)
  | s ->
      Error
        (Printf.sprintf "unknown platform %S (try example, multimedia, mesh3x3)"
           s)

module Handler = struct
  type t = {
    root : string;
    journal : out_channel option;
    journal_mutex : Mutex.t;
    cancel : Budget.Cancel.t;
    admission : Admission.t;
    mutable sweep_domains : int;
    mutable served : int;
    mutable rejected : int;
    stats_mutex : Mutex.t;
    c_requests : Obs.Counter.t;
    c_malformed : Obs.Counter.t;
    h_request_s : Obs.Histogram.t;
    h_tier_s : (Tier.t * Obs.Histogram.t) list;
  }

  let create ?(root = ".") ?journal ?cancel ?(sweep_domains = 1) ~admission ()
      =
    (* Register the full counter grid up front so every verb/tier/outcome
       appears (at 0) in any --metrics document the daemon writes. *)
    List.iter
      (fun v -> ignore (Obs.Counter.make ("server.verb." ^ v)))
      [ "ping"; "status"; "stats"; "drain"; "sleep"; "analyze"; "flow" ];
    List.iter
      (fun t -> ignore (Obs.Counter.make ("server.tier." ^ Tier.label t)))
      Tier.all;
    List.iter
      (fun o -> ignore (Obs.Counter.make ("server.outcome." ^ o)))
      [ "ok"; "error"; "overloaded"; "draining"; "cancelled" ];
    ignore (Obs.Counter.make "server.connections");
    ignore (Obs.Counter.make "server.timeouts.idle");
    ignore (Obs.Counter.make "server.timeouts.read");
    {
      root;
      journal;
      journal_mutex = Mutex.create ();
      cancel = Option.value cancel ~default:(Budget.Cancel.create ());
      admission;
      sweep_domains = max 1 sweep_domains;
      served = 0;
      rejected = 0;
      stats_mutex = Mutex.create ();
      c_requests = Obs.Counter.make "server.requests";
      c_malformed = Obs.Counter.make "server.malformed";
      h_request_s = Obs.Histogram.make "server.request_s";
      h_tier_s =
        List.map
          (fun tier ->
            ( tier,
              Obs.Histogram.make ("server.request_s." ^ Tier.label tier) ))
          Tier.all;
    }

  let admission t = t.admission
  let sweep_domains t = t.sweep_domains

  (* Nested-pool hazard (DESIGN §12): M > 1 worker threads each driving a
     sharded sweep would race for the global shard-domain allowance —
     late requests silently degrade and the box oversubscribes. A daemon
     running a real pool therefore clamps analysis to the sequential
     engine; one request at a time (M = 1, or an embedder's inline
     handler) keeps whatever was configured. *)
  let clamp_sweep_for_pool t ~workers =
    if workers > 1 && t.sweep_domains > 1 then begin
      t.sweep_domains <- 1;
      Obs.Counter.add "server.sweep.clamped" 1
    end

  let requests_served t =
    Mutex.lock t.stats_mutex;
    let n = t.served in
    Mutex.unlock t.stats_mutex;
    n

  let requests_rejected t =
    Mutex.lock t.stats_mutex;
    let n = t.rejected in
    Mutex.unlock t.stats_mutex;
    n

  let bump_served t =
    Mutex.lock t.stats_mutex;
    t.served <- t.served + 1;
    Mutex.unlock t.stats_mutex

  let bump_rejected t =
    Mutex.lock t.stats_mutex;
    t.rejected <- t.rejected + 1;
    Mutex.unlock t.stats_mutex

  let journal_write t line =
    match t.journal with
    | None -> ()
    | Some oc ->
        Mutex.lock t.journal_mutex;
        output_string oc line;
        output_char oc '\n';
        flush oc;
        Mutex.unlock t.journal_mutex

  let id_json = function None -> Json.Null | Some id -> Json.String id

  let respond ?result ~id ~status ~verb () =
    Json.to_compact_string
      (Json.Assoc
         ([ ("id", id_json id); ("status", Json.String status) ]
         @ [ ("verb", Json.String verb) ]
         @ match result with None -> [] | Some r -> [ ("result", r) ]))

  let respond_error ~id msg =
    Json.to_compact_string
      (Json.Assoc
         [
           ("id", id_json id);
           ("status", Json.String "error");
           ("error", Json.String msg);
         ])

  let outcome name = Obs.Counter.add ("server.outcome." ^ name) 1

  (* Application loading, shared by analyze and flow. XML files carry
     Gamma and worst-case execution times; anything else parses as the
     text format of lib/sdf/textio. *)
  let load_doc t file =
    let path = Filename.concat t.root file in
    if Filename.check_suffix file ".xml" then begin
      let app = Appmodel.Sdf3_xml.read_app_file path in
      let g = app.Appmodel.Appgraph.graph in
      let taus =
        Array.init (Sdfg.num_actors g) (fun a ->
            Appmodel.Appgraph.max_exec_time app a)
      in
      ( app.Appmodel.Appgraph.app_name,
        g,
        Some taus,
        Some app )
    end
    else begin
      let doc = Sdf.Textio.parse_file path in
      (doc.Sdf.Textio.doc_name, doc.Sdf.Textio.graph, doc.Sdf.Textio.exec_times, None)
    end

  (* One analyze request: consistency, deadlock, then budgeted self-timed
     throughput. Deterministic fields only — counts of stored states are
     deterministic, wall-clock readings are not journaled. *)
  let run_analyze t ~budget file =
    let case = file in
    let name, g, exec_times, _ = load_doc t file in
    match Sdf.Repetition.compute g with
    | Sdf.Repetition.Inconsistent _ ->
        Json.Assoc
          [
            ("case", Json.String case);
            ("status", Json.String "inconsistent");
          ]
    | Sdf.Repetition.Disconnected ->
        Json.Assoc
          [
            ("case", Json.String case); ("status", Json.String "disconnected");
          ]
    | Sdf.Repetition.Consistent gamma -> (
        match Sdf.Deadlock.check g gamma with
        | Sdf.Deadlock.Deadlocked _ ->
            Json.Assoc
              [
                ("case", Json.String case);
                ("status", Json.String "deadlocked");
              ]
        | Sdf.Deadlock.Deadlock_free -> (
            match exec_times with
            | None ->
                Journal.error ~case "no execution times in file"
            | Some taus -> (
                match
                  Analysis.Selftimed.analyze_parallel_budgeted
                    ~domains:t.sweep_domains ~budget g taus
                with
                | Ok r ->
                    Json.Assoc
                      [
                        ("case", Json.String case);
                        ("status", Json.String "analyzed");
                        ("graph", Json.String name);
                        ("actors", Json.Int (Sdfg.num_actors g));
                        ("channels", Json.Int (Sdfg.num_channels g));
                        ("states", Json.Int r.Analysis.Selftimed.states);
                        ( "throughput",
                          Json.String
                            (Rat.to_string
                               r.Analysis.Selftimed.throughput.(0)) );
                      ]
                | Error p ->
                    Journal.partial ~case p.Analysis.Selftimed.reason)))

  let run_flow t ~budget ~file ~platform =
    let case = file in
    match platform_of_string platform with
    | Error msg -> Journal.error ~case msg
    | Ok arch ->
        let app = Appmodel.Sdf3_xml.read_app_file (Filename.concat t.root file) in
        let r = Core.Flow.allocate_with_retry ~budget app arch in
        Journal.of_flow_result ~case r

  (* Work-verb execution with per-request failure isolation: every
     exception — missing file, parse error, inconsistent graph, analysis
     bug — becomes this request's error result, never the daemon's
     crash. *)
  let run_work t (req : Request.t) =
    let exec () =
      let budget = Tier.budget ~cancel:t.cancel req.Request.tier in
      match req.Request.verb with
      | Request.Analyze { file } -> `Result (run_analyze t ~budget file)
      | Request.Flow { file; platform } ->
          let result = run_flow t ~budget ~file ~platform in
          journal_write t (Journal.to_line result);
          `Result result
      | Request.Sleep { ms } ->
          (* Hold the slot, but yield to the shared token so SIGTERM does
             not wait out a long diagnostic sleep. *)
          let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
          let rec napping () =
            if Budget.Cancel.triggered t.cancel then `Cancelled
            else begin
              let left = deadline -. Unix.gettimeofday () in
              if left <= 0. then
                `Result (Json.Assoc [ ("slept_ms", Json.Int ms) ])
              else begin
                Unix.sleepf (Float.min 0.01 left);
                napping ()
              end
            end
          in
          napping ()
      | Request.Ping | Request.Status | Request.Stats | Request.Drain ->
          assert false
    in
    let case_of_verb () =
      match req.Request.verb with
      | Request.Analyze { file } | Request.Flow { file; _ } -> Some file
      | _ -> None
    in
    try exec () with
    | e ->
        let msg =
          match e with
          | Appmodel.Sdf3_xml.Error m -> m
          | Sdf.Xml.Parse_error { position; message } ->
              Printf.sprintf "offset %d: %s" position message
          | Sdf.Textio.Parse_error { line; message } ->
              Printf.sprintf "line %d: %s" line message
          | e -> Printexc.to_string e
        in
        (match (case_of_verb (), req.Request.verb) with
        | Some case, Request.Flow _ ->
            journal_write t (Journal.to_line (Journal.error ~case msg))
        | _ -> ());
        `Error msg

  let status_result t =
    Json.Assoc
      [
        ("in_flight", Json.Int (Admission.in_flight t.admission));
        ("capacity", Json.Int (Admission.capacity t.admission));
        ("reserved", Json.Int (Admission.reserved t.admission));
        ("draining", Json.Bool (Admission.draining t.admission));
        ("served", Json.Int (requests_served t));
        ("rejected", Json.Int (requests_rejected t));
      ]

  (* Wire export of the telemetry registry: every counter and histogram
     snapshot, so a load harness can read [server.preempt.*] and the
     per-tier latency distributions without a metrics file. *)
  let stats_result () =
    let histo (s : Obs.Histogram.snapshot) =
      Json.Assoc
        [
          ("count", Json.Int s.Obs.Histogram.count);
          ("p50", Json.Float s.Obs.Histogram.p50);
          ("p90", Json.Float s.Obs.Histogram.p90);
          ("p99", Json.Float s.Obs.Histogram.p99);
          ("min", Json.Float s.Obs.Histogram.min);
          ("max", Json.Float s.Obs.Histogram.max);
        ]
    in
    Json.Assoc
      [
        ( "counters",
          Json.Assoc
            (List.map
               (fun (k, v) -> (k, Json.Int v))
               (Obs.counters_snapshot ())) );
        ( "histograms",
          Json.Assoc
            (List.map (fun (k, s) -> (k, histo s)) (Obs.Histogram.all ())) );
      ]

  let tier_privileged = function
    | Tier.Interactive -> true
    | Tier.Standard | Tier.Batch -> false

  let tier_histogram t tier = List.assq tier t.h_tier_s

  let rejection ~id ~status ~error =
    Json.to_compact_string
      (Json.Assoc
         [
           ("id", id_json id);
           ("status", Json.String status);
           ("error", Json.String error);
         ])

  (* The daemon-facing entry point. Control verbs (ping/status/stats/
     drain), parse errors and admission rejections are answered inline
     via [write] on the calling (reader) thread; admitted work verbs are
     handed to [submit] as a self-contained job that executes the work
     and writes its own response — the daemon routes jobs to the worker
     pool so one connection can have many requests in flight
     (pipelining). [privileged] on submit mirrors the admission class so
     the queue can let interactive work jump ahead of batch. The job
     releases its admission slot only after the response write, which
     keeps the worker queue bounded by the admission capacity. *)
  let dispatch t ~write ~submit line =
    Obs.Counter.incr t.c_requests;
    let t0 = Unix.gettimeofday () in
    match Request.of_line line with
    | Error msg ->
        Obs.Counter.incr t.c_malformed;
        outcome "error";
        write (respond_error ~id:None msg)
    | Ok req -> (
        let id = req.Request.id in
        let tier = req.Request.tier in
        let verb = Request.verb_label req.Request.verb in
        Obs.Counter.add ("server.verb." ^ verb) 1;
        Obs.Counter.add ("server.tier." ^ Tier.label tier) 1;
        match req.Request.verb with
        | Request.Ping ->
            outcome "ok";
            write (respond ~id ~status:"ok" ~verb ())
        | Request.Status ->
            outcome "ok";
            write (respond ~id ~status:"ok" ~verb ~result:(status_result t) ())
        | Request.Stats ->
            outcome "ok";
            write (respond ~id ~status:"ok" ~verb ~result:(stats_result ()) ())
        | Request.Drain ->
            Admission.begin_drain t.admission;
            outcome "ok";
            write (respond ~id ~status:"ok" ~verb ())
        | Request.Sleep _ | Request.Analyze _ | Request.Flow _ -> (
            let privileged = tier_privileged tier in
            match Admission.try_admit ~privileged t.admission with
            | Admission.Overloaded ->
                bump_rejected t;
                outcome "overloaded";
                write (rejection ~id ~status:"overloaded" ~error:"server at capacity")
            | Admission.Draining ->
                bump_rejected t;
                outcome "draining";
                write (rejection ~id ~status:"draining" ~error:"server is draining")
            | Admission.Admitted ->
                Obs.Gauge.set_int "server.queue_depth"
                  (Admission.in_flight t.admission);
                submit ~privileged (fun () ->
                    Fun.protect
                      ~finally:(fun () ->
                        Admission.release ~privileged t.admission;
                        Obs.Gauge.set_int "server.queue_depth"
                          (Admission.in_flight t.admission))
                      (fun () ->
                        let response =
                          match run_work t req with
                          | `Result r ->
                              bump_served t;
                              outcome "ok";
                              respond ~id ~status:"ok" ~verb ~result:r ()
                          | `Cancelled ->
                              bump_served t;
                              outcome "cancelled";
                              respond ~id ~status:"cancelled" ~verb ()
                          | `Error msg ->
                              bump_served t;
                              outcome "error";
                              respond_error ~id msg
                        in
                        let dt = Unix.gettimeofday () -. t0 in
                        Obs.Histogram.record t.h_request_s dt;
                        Obs.Histogram.record (tier_histogram t tier) dt;
                        write response))))

  (* Synchronous single-line entry point (unit tests, one-shot client
     tooling): work runs inline on the calling thread and the response
     line is returned. *)
  let handle t line =
    let out = ref (respond_error ~id:None "no response") in
    dispatch t
      ~write:(fun s -> out := s)
      ~submit:(fun ~privileged:_ job -> job ())
      line;
    !out
end

module Daemon = struct
  type config = {
    socket_path : string;
    tcp_port : int option;
    read_timeout_s : float;
    idle_timeout_s : float;
    max_line_bytes : int;
    workers : int;
  }

  let default_config ~socket_path =
    {
      socket_path;
      tcp_port = None;
      read_timeout_s = 30.;
      idle_timeout_s = 300.;
      max_line_bytes = 1 lsl 20;
      workers = 0;
    }

  let write_all fd s =
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    let off = ref 0 in
    while !off < n do
      match Unix.write fd b !off (n - !off) with
      | written -> off := !off + written
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done

  (* Per-connection write-side state. All response writes — inline
     control answers from the reader thread and work results from worker
     threads — serialize on [wmutex], so pipelined completions never
     interleave bytes on the wire. [pending] counts admitted jobs whose
     response has not been written yet; the reader only closes the fd
     once it reaches zero, and since a job's pending decrement happens
     after its response write (under the same mutex), the close decision
     can never race a write on a stale fd. *)
  type conn = {
    fd : Unix.file_descr;
    wmutex : Mutex.t;
    wcond : Condition.t;
    mutable pending : int;
    mutable closed : bool;
  }

  (* One reader thread per connection: assemble newline-delimited
     requests, dispatch each (control verbs answered inline, work verbs
     queued to the worker pool), close on end-of-stream, timeout,
     oversized line or daemon shutdown. Everything a peer can do wrong
     ends this connection, not the daemon. *)
  let connection cfg handler queue ~shutdown fd =
    let adm = Handler.admission handler in
    let conn =
      {
        fd;
        wmutex = Mutex.create ();
        wcond = Condition.create ();
        pending = 0;
        closed = false;
      }
    in
    let write_line s =
      Mutex.lock conn.wmutex;
      (if not conn.closed then
         try write_all conn.fd (s ^ "\n") with Unix.Unix_error _ -> ());
      Mutex.unlock conn.wmutex
    in
    let submit ~privileged job =
      Mutex.lock conn.wmutex;
      conn.pending <- conn.pending + 1;
      Mutex.unlock conn.wmutex;
      Workqueue.submit queue ~privileged (fun () ->
          Fun.protect
            ~finally:(fun () ->
              Mutex.lock conn.wmutex;
              conn.pending <- conn.pending - 1;
              Condition.broadcast conn.wcond;
              Mutex.unlock conn.wmutex)
            job)
    in
    let dispatch line =
      Admission.enter_control adm;
      Fun.protect
        ~finally:(fun () -> Admission.exit_control adm)
        (fun () -> Handler.dispatch handler ~write:write_line ~submit line)
    in
    let buf = Buffer.create 1024 in
    let chunk = Bytes.create 4096 in
    let rec serve_lines () =
      let s = Buffer.contents buf in
      match String.index_opt s '\n' with
      | Some i ->
          let line = String.sub s 0 i in
          Buffer.clear buf;
          Buffer.add_string buf
            (String.sub s (i + 1) (String.length s - i - 1));
          dispatch line;
          serve_lines ()
      | None ->
          if Buffer.length buf > cfg.max_line_bytes then begin
            write_line (Handler.respond_error ~id:None "request line too long");
            `Close
          end
          else `More
    in
    (* Select in short slices so the reader notices the daemon's
       shutdown signal within ~0.2 s. During a drain it keeps reading
       (new work is answered "draining"); once the admission window has
       emptied and the daemon flips [shutdown], it stops reading, lets
       queued responses flush (pending drains to zero) and closes — no
       request that was already admitted loses its response. *)
    let rec read_loop ~deadline ~kind =
      if Atomic.get shutdown then ()
      else begin
        let now = Unix.gettimeofday () in
        if now >= deadline then Obs.Counter.add ("server.timeouts." ^ kind) 1
        else begin
          let slice = Float.min 0.2 (deadline -. now) in
          match Unix.select [ fd ] [] [] slice with
          | [], _, _ -> read_loop ~deadline ~kind
          | _ -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> ()
              | n -> (
                  Buffer.add_subbytes buf chunk 0 n;
                  match serve_lines () with
                  | `More ->
                      let kind, timeout =
                        if Buffer.length buf = 0 then
                          ("idle", cfg.idle_timeout_s)
                        else ("read", cfg.read_timeout_s)
                      in
                      read_loop
                        ~deadline:(Unix.gettimeofday () +. timeout)
                        ~kind
                  | `Close -> ())
              | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                  read_loop ~deadline ~kind)
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              read_loop ~deadline ~kind
        end
      end
    in
    (try
       read_loop
         ~deadline:(Unix.gettimeofday () +. cfg.idle_timeout_s)
         ~kind:"idle"
     with _ -> ());
    (* Flush: wait for every admitted-but-unanswered request on this
       connection before closing the stream. *)
    Mutex.lock conn.wmutex;
    while conn.pending > 0 do
      Condition.wait conn.wcond conn.wmutex
    done;
    conn.closed <- true;
    Mutex.unlock conn.wmutex;
    try Unix.close fd with Unix.Unix_error _ -> ()

  let unix_listener path =
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd

  let tcp_listener port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64;
    fd

  let run ?(external_stop = fun () -> false) ?(on_ready = fun () -> ())
      cfg handler ~cancel =
    (* A peer closing mid-response must not kill the process. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let adm = Handler.admission handler in
    let queue = Workqueue.create () in
    let nworkers =
      if cfg.workers > 0 then cfg.workers else Admission.capacity adm
    in
    Handler.clamp_sweep_for_pool handler ~workers:nworkers;
    let workers =
      List.init nworkers (fun _ ->
          Thread.create
            (fun () ->
              let rec loop () =
                match Workqueue.take queue with
                | Some job ->
                    (try job () with _ -> ());
                    loop ()
                | None -> ()
              in
              loop ())
            ())
    in
    let live = Atomic.make 0 in
    let shutdown = Atomic.make false in
    let listeners =
      unix_listener cfg.socket_path
      :: (match cfg.tcp_port with
         | None -> []
         | Some port -> [ tcp_listener port ])
    in
    on_ready ();
    let stopping = ref false in
    while not !stopping do
      (match Unix.select listeners [] [] 0.1 with
      | ready, _, _ ->
          List.iter
            (fun lfd ->
              match Unix.accept lfd with
              | fd, _ ->
                  Obs.Counter.add "server.connections" 1;
                  Atomic.incr live;
                  ignore
                    (Thread.create
                       (fun () ->
                         Fun.protect
                           ~finally:(fun () -> Atomic.decr live)
                           (fun () ->
                             connection cfg handler queue ~shutdown fd))
                       ())
              | exception Unix.Unix_error (_, _, _) -> ())
            ready
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      if external_stop () then begin
        (* SIGTERM: drain, and additionally cancel in-flight budgeted
           work — it stops at its next budget probe with a sound partial
           outcome instead of running out its tier allowance. *)
        Admission.begin_drain adm;
        Budget.Cancel.trigger cancel
      end;
      if Admission.draining adm && Admission.in_flight adm = 0 then
        stopping := true
    done;
    (* Admitted work holds its slot until after the response write, so
       wait_idle returning means every accepted request has been
       answered; control sections cover the inline answers. *)
    Admission.wait_idle adm;
    (* Readers notice the shutdown flag within a poll slice, flush and
       close their connections; give them a bounded moment so every
       client sees a clean end-of-stream before the listeners go away. *)
    Atomic.set shutdown true;
    let patience = Unix.gettimeofday () +. 5.0 in
    while Atomic.get live > 0 && Unix.gettimeofday () < patience do
      Unix.sleepf 0.01
    done;
    Workqueue.close queue;
    List.iter Thread.join workers;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
    (try Sys.remove cfg.socket_path with Sys_error _ -> ());
    0
end
