(** Allocation-as-a-service: the wire protocol, QoS budgets, admission
    control and request handling behind [bin/sdf3_serve].

    The daemon accepts newline-delimited JSON requests over a Unix-domain
    (and optionally loopback-TCP) socket. One request is one line; one
    response is one line; request [id]s are echoed back; malformed input
    is answered with a structured error, never a crash. Work verbs
    ([analyze], [flow], [sleep]) pass admission control — a bounded
    in-flight window rejected with ["overloaded"] when full — and run
    under a per-request {!Budget.t} derived from the request's QoS tier.
    Control verbs ([ping], [status], [stats], [drain]) always run.

    Requests:
    {v
    {"id":"r1","verb":"flow","file":"app.xml","platform":"mesh3x3","tier":"standard"}
    {"id":"r2","verb":"analyze","file":"app.xml","tier":"interactive"}
    {"id":"r3","verb":"status"}
    {"id":"r4","verb":"drain"}
    v}
    Responses:
    {v
    {"id":"r1","status":"ok","verb":"flow","result":{"case":"app.xml","status":"allocated","throughput":"1/4020"}}
    {"id":null,"status":"error","error":"parse error: ..."}
    {"id":"r9","status":"overloaded","error":"server at capacity"}
    v}

    The [result] object of a [flow] response is byte-identical to the
    corresponding [sdf3_batch] journal line (both are produced by
    {!Journal}), so a served journal can be [cmp]'d against a one-shot
    batch run over the same inputs — CI's serve-smoke job does exactly
    that. *)

(** QoS tiers and their resource budgets. Every tier's budget carries the
    server's shared cancel token, so [SIGTERM] interrupts even an
    unbounded batch request at its next budget probe. *)
module Tier : sig
  type t = Interactive | Standard | Batch

  val all : t list

  val label : t -> string
  (** ["interactive"], ["standard"], ["batch"] — the wire names, also used
      in the ["server.tier.*"] counters. *)

  val of_string : string -> (t, string) result

  val budget : ?cancel:Budget.Cancel.t -> t -> Budget.t
  (** [Interactive]: 1 s wall deadline, 200k-state cap — bounded latency,
      may degrade to a partial answer. [Standard]: 10 s, 2M states.
      [Batch]: no caps beyond the cancel token. *)
end

(** The deterministic JSONL journal format shared by [sdf3_batch] and the
    daemon's request log: one object per case, fields in a fixed order,
    no timings or state counts, so runs over the same inputs are
    byte-comparable. *)
module Journal : sig
  val allocated : case:string -> Sdf.Rat.t -> Obs.Json.t
  val partial : case:string -> Budget.reason -> Obs.Json.t
  val failed : case:string -> string -> Obs.Json.t
  val error : case:string -> string -> Obs.Json.t

  val failure_label : Core.Strategy.failure -> string
  (** ["bind_failed"], ["schedule_failed"], ["slice_failed"],
      ["budget_exhausted"]. *)

  val of_flow_result : case:string -> Core.Flow.result -> Obs.Json.t
  (** Fold an [allocate_with_retry] outcome into its journal object:
      allocated / partial (budget ran out) / failed (last attempt's
      failure label) / ["no_attempt"]. *)

  val to_line : Obs.Json.t -> string
  (** Compact one-line encoding, no trailing newline. *)
end

(** The bounded in-flight window with priority admission. Work verbs
    [try_admit] and are rejected when their class's share of the window
    is full or the server is draining; control verbs [enter_control]
    unconditionally. Both must [release]. [wait_idle] blocks until
    nothing is in flight — the drain path.

    Two admission classes: [reserved] slots are held back for
    {e privileged} (interactive-tier) requests. Normal work admits only
    while fewer than [capacity - reserved] normal requests are in
    flight; privileged work may fill the whole window. Two counters
    record the mechanism working: ["server.preempt.reserved_admits"]
    (privileged admissions that landed on the reserve while the general
    pool was full) and ["server.preempt.normal_blocked"] (normal
    rejections issued while free-but-reserved slots existed). *)
module Admission : sig
  type t

  type decision = Admitted | Overloaded | Draining

  val create : ?reserved:int -> capacity:int -> unit -> t
  (** [capacity] is clamped to at least 1; [reserved] (default 0) to
      [0 <= reserved <= capacity - 1], so at least one general slot
      always exists. *)

  val capacity : t -> int

  val reserved : t -> int
  (** Slots held back for privileged admissions (after clamping). *)

  val try_admit : ?privileged:bool -> t -> decision
  (** [privileged] (default false) requests may use reserved slots;
      normal requests are [Overloaded] once the general pool
      ([capacity - reserved]) is occupied. *)

  val release : ?privileged:bool -> t -> unit
  (** End one admitted work request. [privileged] must match the
      admission call. *)

  val enter_control : t -> unit
  val exit_control : t -> unit
  (** Bracket a control section (request parsing, control verbs, response
      writes). Control sections are never rejected but are waited for by
      {!wait_idle}, so a drain cannot cut a response mid-write. *)

  val in_flight : t -> int
  (** Admitted {e work} requests currently executing (control sections are
      tracked separately and excluded — [status] does not count itself). *)

  val normal_in_flight : t -> int
  val privileged_in_flight : t -> int
  (** Per-class occupancy, for tests and the status verb. *)

  val begin_drain : t -> unit
  (** Stop admitting work (idempotent). Already-admitted requests run to
      completion; new work verbs are answered ["draining"]. *)

  val draining : t -> bool

  val wait_idle : t -> unit
  (** Block until no work or control request is in flight. Returns
      immediately when idle. *)
end

(** The two-class FIFO queue feeding the daemon's worker pool. Reader
    threads [submit] admitted jobs; workers [take] them — privileged
    jobs always dequeue before normal ones, arrival order is preserved
    within each class. Bounded implicitly: jobs are only submitted after
    {!Admission.try_admit}, so the queue never exceeds the admission
    capacity. *)
module Workqueue : sig
  type t

  val create : unit -> t

  val submit : t -> privileged:bool -> (unit -> unit) -> unit
  (** Enqueue a job. After {!close}, runs the job inline in the caller
      instead — an admitted request is never dropped. *)

  val take : t -> (unit -> unit) option
  (** Block for the next job (privileged first, FIFO within class);
      [None] once the queue is closed and empty — the worker exit
      signal. *)

  val try_take : t -> (unit -> unit) option
  (** Non-blocking {!take} ([None] when empty, closed or not). *)

  val length : t -> int

  val close : t -> unit
  (** Wake all blocked workers; [take] returns [None] once empty. *)
end

(** One parsed request. *)
module Request : sig
  type verb =
    | Ping
    | Status
    | Stats
        (** Wire export of the telemetry registry: all [Obs] counters and
            histogram snapshots, so a load harness can poll
            ["server.preempt.*"] and per-tier latency quantiles without a
            metrics file. *)
    | Drain
    | Sleep of { ms : int }
        (** Hold an admission slot for [ms] milliseconds — an operational
            diagnostic (and the deterministic way to pin the window in
            tests). Interrupted by the shared cancel token. *)
    | Analyze of { file : string }
    | Flow of { file : string; platform : string }

  type t = { id : string option; verb : verb; tier : Tier.t }

  val of_line : string -> (t, string) result
  (** Parse one wire line. [tier] defaults to [Standard]; [platform] to
      ["multimedia"]. The error string is safe to echo back. *)
end

(** The request handler: everything between a wire line in and a wire
    line out — parsing, admission, tier budgets, execution, journaling
    and the [server.*] telemetry. Socket-free, so tests drive it
    directly. *)
module Handler : sig
  type t

  val create :
    ?root:string ->
    ?journal:out_channel ->
    ?cancel:Budget.Cancel.t ->
    ?sweep_domains:int ->
    admission:Admission.t ->
    unit ->
    t
  (** [root] (default ".") anchors request [file] fields; [journal]
      receives one flushed journal line per executed [flow] request;
      [cancel] is the shared drain token threaded into every request
      budget. [sweep_domains] (default 1) is the domain count handed to
      {!Analysis.Selftimed.analyze_parallel_budgeted} by [analyze]
      requests; it only takes effect when the handler executes one
      request at a time — {!Daemon.run} with a worker pool larger than
      one clamps it back to the sequential engine (see
      {!sweep_domains}). *)

  val sweep_domains : t -> int
  (** The domain count [analyze] requests currently use. [1] after
      {!clamp_sweep_for_pool} fired. *)

  val clamp_sweep_for_pool : t -> workers:int -> unit
  (** Resolve the nested-pool hazard: with [workers > 1] concurrent
      request threads, per-request sharded sweeps would race for the
      process-wide shard-domain allowance and oversubscribe the machine
      — so a multi-worker pool forces [sweep_domains] back to [1]
      (counted in [server.sweep.clamped]). {!Daemon.run} calls this with
      its resolved pool size before serving; idempotent. *)

  val dispatch :
    t ->
    write:(string -> unit) ->
    submit:(privileged:bool -> (unit -> unit) -> unit) ->
    string ->
    unit
  (** The pipelining entry point. Control verbs, parse errors and
      admission rejections are answered inline via [write] on the
      calling thread; each admitted work verb is handed to [submit] as a
      self-contained job that executes the work and calls [write] with
      its own response. [privileged] mirrors the admission class
      (interactive tier) so the daemon's {!Workqueue} can order jobs.
      The job releases its admission slot only {e after} its response
      write, so a drain that waits for the admission window to empty has
      also waited for every response byte. *)

  val handle : t -> string -> string
  (** One request line to one response line (no trailing newline):
      {!dispatch} with inline execution. Never raises: internal failures
      become this request's ["error"] response (and journal line), not
      the daemon's crash. *)

  val requests_served : t -> int
  val requests_rejected : t -> int

  val admission : t -> Admission.t
end

val platform_of_string :
  string -> (Platform.Archgraph.t, string) result
(** ["example"], ["multimedia"] or ["mesh3x3"] — the shared CLI platform
    names. *)

(** The socket front-end: listeners, per-connection reader threads with
    idle/read timeouts, a bounded worker pool executing admitted work
    off the reader threads (per-connection pipelining), and the
    drain-aware accept loop. *)
module Daemon : sig
  type config = {
    socket_path : string;  (** Unix-domain listener (always on) *)
    tcp_port : int option;  (** optional loopback TCP listener *)
    read_timeout_s : float;  (** mid-line stall allowance *)
    idle_timeout_s : float;  (** between-requests allowance *)
    max_line_bytes : int;
    workers : int;
        (** Worker-pool size; [0] (the default) means one worker per
            admission slot, so an admitted request never waits behind the
            queue for longer than the window already implies. *)
  }

  val default_config : socket_path:string -> config

  val run :
    ?external_stop:(unit -> bool) ->
    ?on_ready:(unit -> unit) ->
    config ->
    Handler.t ->
    cancel:Budget.Cancel.t ->
    int
  (** Serve until drained: accept connections, one reader thread per
      connection, admitted work executed by the worker pool with
      responses serialized per connection (a client may pipeline many
      requests on one socket; responses may arrive out of request order,
      matched by [id]). Returns 0 after a graceful drain ([drain] verb,
      or [external_stop] returning true — the SIGTERM flag — which
      additionally triggers [cancel] so in-flight budgeted work stops at
      its next probe). On drain, readers stop consuming input, every
      admitted request's response is written, connections see a clean
      end-of-stream, and the socket file is unlinked on exit. *)
end
