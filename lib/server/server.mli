(** Allocation-as-a-service: the wire protocol, QoS budgets, admission
    control and request handling behind [bin/sdf3_serve].

    The daemon accepts newline-delimited JSON requests over a Unix-domain
    (and optionally loopback-TCP) socket. One request is one line; one
    response is one line; request [id]s are echoed back; malformed input
    is answered with a structured error, never a crash. Work verbs
    ([analyze], [flow], [sleep]) pass admission control — a bounded
    in-flight window rejected with ["overloaded"] when full — and run
    under a per-request {!Budget.t} derived from the request's QoS tier.
    Control verbs ([ping], [status], [drain]) always run.

    Requests:
    {v
    {"id":"r1","verb":"flow","file":"app.xml","platform":"mesh3x3","tier":"standard"}
    {"id":"r2","verb":"analyze","file":"app.xml","tier":"interactive"}
    {"id":"r3","verb":"status"}
    {"id":"r4","verb":"drain"}
    v}
    Responses:
    {v
    {"id":"r1","status":"ok","verb":"flow","result":{"case":"app.xml","status":"allocated","throughput":"1/4020"}}
    {"id":null,"status":"error","error":"parse error: ..."}
    {"id":"r9","status":"overloaded","error":"server at capacity"}
    v}

    The [result] object of a [flow] response is byte-identical to the
    corresponding [sdf3_batch] journal line (both are produced by
    {!Journal}), so a served journal can be [cmp]'d against a one-shot
    batch run over the same inputs — CI's serve-smoke job does exactly
    that. *)

(** QoS tiers and their resource budgets. Every tier's budget carries the
    server's shared cancel token, so [SIGTERM] interrupts even an
    unbounded batch request at its next budget probe. *)
module Tier : sig
  type t = Interactive | Standard | Batch

  val all : t list

  val label : t -> string
  (** ["interactive"], ["standard"], ["batch"] — the wire names, also used
      in the ["server.tier.*"] counters. *)

  val of_string : string -> (t, string) result

  val budget : ?cancel:Budget.Cancel.t -> t -> Budget.t
  (** [Interactive]: 1 s wall deadline, 200k-state cap — bounded latency,
      may degrade to a partial answer. [Standard]: 10 s, 2M states.
      [Batch]: no caps beyond the cancel token. *)
end

(** The deterministic JSONL journal format shared by [sdf3_batch] and the
    daemon's request log: one object per case, fields in a fixed order,
    no timings or state counts, so runs over the same inputs are
    byte-comparable. *)
module Journal : sig
  val allocated : case:string -> Sdf.Rat.t -> Obs.Json.t
  val partial : case:string -> Budget.reason -> Obs.Json.t
  val failed : case:string -> string -> Obs.Json.t
  val error : case:string -> string -> Obs.Json.t

  val failure_label : Core.Strategy.failure -> string
  (** ["bind_failed"], ["schedule_failed"], ["slice_failed"],
      ["budget_exhausted"]. *)

  val of_flow_result : case:string -> Core.Flow.result -> Obs.Json.t
  (** Fold an [allocate_with_retry] outcome into its journal object:
      allocated / partial (budget ran out) / failed (last attempt's
      failure label) / ["no_attempt"]. *)

  val to_line : Obs.Json.t -> string
  (** Compact one-line encoding, no trailing newline. *)
end

(** The bounded in-flight window. Work verbs [try_admit] and are rejected
    when the window is full or the server is draining; control verbs
    [enter_control] unconditionally. Both must [release]. [wait_idle]
    blocks until nothing is in flight — the drain path. *)
module Admission : sig
  type t

  type decision = Admitted | Overloaded | Draining

  val create : capacity:int -> t
  (** [capacity] is clamped to at least 1. *)

  val capacity : t -> int

  val try_admit : t -> decision
  val release : t -> unit
  (** End one admitted work request. *)

  val enter_control : t -> unit
  val exit_control : t -> unit
  (** Bracket a control section (request parsing, control verbs, response
      writes). Control sections are never rejected but are waited for by
      {!wait_idle}, so a drain cannot cut a response mid-write. *)

  val in_flight : t -> int
  (** Admitted {e work} requests currently executing (control sections are
      tracked separately and excluded — [status] does not count itself). *)

  val begin_drain : t -> unit
  (** Stop admitting work (idempotent). Already-admitted requests run to
      completion; new work verbs are answered ["draining"]. *)

  val draining : t -> bool

  val wait_idle : t -> unit
  (** Block until no work or control request is in flight. Returns
      immediately when idle. *)
end

(** One parsed request. *)
module Request : sig
  type verb =
    | Ping
    | Status
    | Drain
    | Sleep of { ms : int }
        (** Hold an admission slot for [ms] milliseconds — an operational
            diagnostic (and the deterministic way to pin the window in
            tests). Interrupted by the shared cancel token. *)
    | Analyze of { file : string }
    | Flow of { file : string; platform : string }

  type t = { id : string option; verb : verb; tier : Tier.t }

  val of_line : string -> (t, string) result
  (** Parse one wire line. [tier] defaults to [Standard]; [platform] to
      ["multimedia"]. The error string is safe to echo back. *)
end

(** The request handler: everything between a wire line in and a wire
    line out — parsing, admission, tier budgets, execution, journaling
    and the [server.*] telemetry. Socket-free, so tests drive it
    directly. *)
module Handler : sig
  type t

  val create :
    ?root:string ->
    ?journal:out_channel ->
    ?cancel:Budget.Cancel.t ->
    admission:Admission.t ->
    unit ->
    t
  (** [root] (default ".") anchors request [file] fields; [journal]
      receives one flushed journal line per executed [flow] request;
      [cancel] is the shared drain token threaded into every request
      budget. *)

  val handle : t -> string -> string
  (** One request line to one response line (no trailing newline). Never
      raises: internal failures become this request's ["error"] response
      (and journal line), not the daemon's crash. *)

  val requests_served : t -> int
  val requests_rejected : t -> int

  val admission : t -> Admission.t
end

val platform_of_string :
  string -> (Platform.Archgraph.t, string) result
(** ["example"], ["multimedia"] or ["mesh3x3"] — the shared CLI platform
    names. *)

(** The socket front-end: listeners, per-connection reader threads with
    idle/read timeouts, and the drain-aware accept loop. *)
module Daemon : sig
  type config = {
    socket_path : string;  (** Unix-domain listener (always on) *)
    tcp_port : int option;  (** optional loopback TCP listener *)
    read_timeout_s : float;  (** mid-line stall allowance *)
    idle_timeout_s : float;  (** between-requests allowance *)
    max_line_bytes : int;
  }

  val default_config : socket_path:string -> config

  val run :
    ?external_stop:(unit -> bool) ->
    ?on_ready:(unit -> unit) ->
    config ->
    Handler.t ->
    cancel:Budget.Cancel.t ->
    int
  (** Serve until drained: accept connections, one reader thread per
      connection, each request answered in arrival order per connection.
      Returns 0 after a graceful drain ([drain] verb, or [external_stop]
      returning true — the SIGTERM flag — which additionally triggers
      [cancel] so in-flight budgeted work stops at its next probe).
      In-flight requests finish (or observe the token) before the
      listener closes; the socket file is unlinked on exit. *)
end
