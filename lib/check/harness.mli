(** The fuzz driver: generate random consistent applications with
    {!Gen.Sdfgen}, run the differential + metamorphic oracle catalogue on
    each, periodically cross-check the full allocation flow, and shrink +
    persist the first counterexample found. *)

type config = {
  seed : int;  (** master RNG seed; every case derives from it *)
  count : int;  (** maximum number of generated cases *)
  time_budget : float option;  (** wall-clock budget in seconds *)
  max_states : int;  (** state-space cap handed to every oracle *)
  mutant : bool;
      (** when set, {!Differential.mutant} is enabled for the whole run:
          the MCR replay sees an off-by-one initial-token count, and the
          differential oracle is expected to catch it *)
  scenario_mutant : bool;
      (** when set, {!Differential.scenario_mutant} is enabled: the
          scenario product engine sees every mode-transition delay as 0
          while the enumeration keeps the real delays, and
          [diff.scenario-vs-enumeration] is expected to catch it *)
  corpus_dir : string option;
      (** where to write the shrunk counterexample, if anywhere *)
  app_every : int;
      (** run {!Validator.flow_invariance} on every [app_every]-th case
          (and {!Validator.multi_app_invariance} five times less often);
          [0] disables both *)
  log : string -> unit;  (** progress/diagnostic sink *)
}

val default : config
(** seed 1, 200 cases, no time budget, 50k states, no mutants, no corpus
    writing, app checks every 10th case, silent. *)

val fuzz_profile : Gen.Sdfgen.profile
(** The generation profile used for fuzzing: 2-6 actors, repetition
    entries at most 3, so state spaces stay small enough to run the whole
    catalogue hundreds of times per second. *)

type counterexample = {
  oracle : string;  (** name of the disagreeing oracle *)
  message : string;  (** its failure message on the original case *)
  original : Case.t;
  shrunk : Case.t;
      (** greedily minimised case (equal to [original] for application-
          level oracles, which are not shrunk) *)
  shrink_steps : int;
  written : string option;  (** corpus path, when [corpus_dir] was set *)
}

type summary = {
  cases : int;  (** cases actually generated *)
  checks : int;  (** oracle invocations *)
  skips : int;  (** oracle invocations that could not decide *)
  counterexample : counterexample option;
}

val run : config -> summary
(** Generate and check cases until [count] is reached, the time budget
    expires, or an oracle fails; the first failure stops the run. *)
