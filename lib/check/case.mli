module Sdfg = Sdf.Sdfg

(** The unit the throughput oracles operate on: a named SDFG plus its
    per-actor execution times — exactly the input of
    {!Analysis.Selftimed.analyze}, and exactly what the {!Sdf.Textio}
    format serialises, so cases round-trip through the regression corpus
    without loss. *)

type t = { name : string; graph : Sdfg.t; taus : int array }

val of_shrink : name:string -> Gen.Shrink.case -> t
val to_shrink : t -> Gen.Shrink.case

val well_formed : t -> bool
(** See {!Gen.Shrink.well_formed}. *)

val to_text : t -> string
(** {!Sdf.Textio} rendering (with execution times); parses back exactly. *)

val of_document : Sdf.Textio.document -> t
(** Execution times default to 1 for every actor when the document
    declares none. *)

val pp : Format.formatter -> t -> unit
