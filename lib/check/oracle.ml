type outcome = Pass | Skip of string | Fail of string

type t = {
  name : string;
  run : max_states:int -> rng:Gen.Rng.t -> Case.t -> outcome;
}

let failf fmt = Format.kasprintf (fun s -> Fail s) fmt

let pp_outcome ppf = function
  | Pass -> Format.pp_print_string ppf "pass"
  | Skip r -> Format.fprintf ppf "skip (%s)" r
  | Fail r -> Format.fprintf ppf "FAIL: %s" r
