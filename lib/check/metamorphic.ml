module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Selftimed = Analysis.Selftimed

type st_outcome =
  | St of Selftimed.result
  | St_deadlock
  | St_exceeded

let selftimed ~max_states g taus =
  match Selftimed.analyze ~max_states g taus with
  | r -> St r
  | exception Selftimed.Deadlocked -> St_deadlock
  | exception Selftimed.State_space_exceeded _ -> St_exceeded

(* Compare two runs whose throughput arrays should match under an index
   mapping [image] (actor a of the first run corresponds to [image a] of
   the second) and a rational transform on the values. *)
let compare_runs ~what ~image ~transform g a_out b_out =
  match (a_out, b_out) with
  | St_exceeded, _ | _, St_exceeded -> Oracle.Skip "state space exceeded"
  | St_deadlock, St_deadlock -> Oracle.Pass
  | St_deadlock, St _ | St _, St_deadlock ->
      Oracle.failf "%s changed the deadlock verdict" what
  | St ra, St rb ->
      let n = Array.length ra.Selftimed.throughput in
      let rec verify a =
        if a >= n then Oracle.Pass
        else
          let expected = transform ra.Selftimed.throughput.(a) in
          let got = rb.Selftimed.throughput.(image a) in
          if Rat.equal expected got then verify (a + 1)
          else
            Oracle.failf "%s: actor %s expected throughput %s, got %s" what
              (Sdfg.actor_name g a) (Rat.to_string expected)
              (Rat.to_string got)
      in
      verify 0

(* Rebuild the graph with fresh actor and channel names: throughput (and,
   per the memo-key contract, the cache entry) must not depend on names. *)
let rename_graph g =
  let b = Sdfg.Builder.create () in
  for a = 0 to Sdfg.num_actors g - 1 do
    ignore (Sdfg.Builder.add_actor b ("r$" ^ Sdfg.actor_name g a))
  done;
  Array.iter
    (fun (c : Sdfg.channel) ->
      ignore
        (Sdfg.Builder.add_channel b ~name:("r$" ^ c.c_name) ~tokens:c.tokens
           ~src:c.src ~dst:c.dst ~prod:c.prod ~cons:c.cons ()))
    (Sdfg.channels g);
  Sdfg.Builder.build b

let renaming ~max_states ~rng:_ (c : Case.t) =
  compare_runs ~what:"renaming" ~image:Fun.id ~transform:Fun.id c.Case.graph
    (selftimed ~max_states c.Case.graph c.Case.taus)
    (selftimed ~max_states (rename_graph c.Case.graph) c.Case.taus)

(* Apply a random permutation pi to the actor indices (actors are re-added
   in permuted order, channels keep their order with remapped endpoints):
   thr'(pi a) = thr(a). Exercises every index-keyed code path. *)
let permute_graph rng g taus =
  let n = Sdfg.num_actors g in
  let pi = Array.init n Fun.id in
  Gen.Rng.shuffle rng pi;
  let inv = Array.make n 0 in
  Array.iteri (fun a j -> inv.(j) <- a) pi;
  let b = Sdfg.Builder.create () in
  for j = 0 to n - 1 do
    ignore (Sdfg.Builder.add_actor b (Sdfg.actor_name g inv.(j)))
  done;
  Array.iter
    (fun (c : Sdfg.channel) ->
      ignore
        (Sdfg.Builder.add_channel b ~name:c.c_name ~tokens:c.tokens
           ~src:pi.(c.src) ~dst:pi.(c.dst) ~prod:c.prod ~cons:c.cons ()))
    (Sdfg.channels g);
  let taus' = Array.make n 0 in
  Array.iteri (fun a t -> taus'.(pi.(a)) <- t) taus;
  (Sdfg.Builder.build b, taus', pi)

let permutation ~max_states ~rng (c : Case.t) =
  let g', taus', pi = permute_graph rng c.Case.graph c.Case.taus in
  compare_runs ~what:"permutation"
    ~image:(fun a -> pi.(a))
    ~transform:Fun.id c.Case.graph
    (selftimed ~max_states c.Case.graph c.Case.taus)
    (selftimed ~max_states g' taus')

(* Scaling every execution time by k scales the period by k and every
   throughput by 1/k, exactly. *)
let time_scaling ~max_states ~rng (c : Case.t) =
  let k = 2 + Gen.Rng.int rng 3 in
  let taus' = Array.map (fun t -> t * k) c.Case.taus in
  compare_runs
    ~what:(Printf.sprintf "time scaling by %d" k)
    ~image:Fun.id
    ~transform:(fun thr -> Rat.div_int thr k)
    c.Case.graph
    (selftimed ~max_states c.Case.graph c.Case.taus)
    (selftimed ~max_states c.Case.graph taus')

(* Maximum number of simultaneously active firings of [actor] in the
   self-timed execution: firing starts are observed over the transient
   plus one full period, which the recurrence argument makes exhaustive,
   and the maximum overlap is always attained at a start. *)
let max_concurrency ~max_states g taus actor =
  let starts = ref [] in
  let observer time a = if a = actor then starts := time :: !starts in
  ignore (Selftimed.analyze ~observer ~max_states g taus);
  let starts = Array.of_list (List.rev !starts) in
  let tau = taus.(actor) in
  let best = ref 1 in
  Array.iter
    (fun s ->
      let active =
        Array.fold_left
          (fun acc s' -> if s' <= s && s < s' + tau then acc + 1 else acc)
          0 starts
      in
      if active > !best then best := active)
    starts;
  !best

(* A self-loop with as many tokens as the actor's peak auto-concurrency
   never gates a firing, so adding it must leave throughput untouched. *)
let neutral_self_edge ~max_states ~rng (c : Case.t) =
  let g = c.Case.graph in
  let a = Gen.Rng.int rng (Sdfg.num_actors g) in
  if c.Case.taus.(a) = 0 then Oracle.Skip "zero-time actor drawn"
  else
    match max_concurrency ~max_states g c.Case.taus a with
    | exception Selftimed.Deadlocked -> Oracle.Skip "case deadlocks"
    | exception Selftimed.State_space_exceeded _ ->
        Oracle.Skip "state space exceeded"
    | m ->
        let b = Sdfg.Builder.create () in
        for x = 0 to Sdfg.num_actors g - 1 do
          ignore (Sdfg.Builder.add_actor b (Sdfg.actor_name g x))
        done;
        Array.iter
          (fun (ch : Sdfg.channel) ->
            ignore
              (Sdfg.Builder.add_channel b ~name:ch.c_name ~tokens:ch.tokens
                 ~src:ch.src ~dst:ch.dst ~prod:ch.prod ~cons:ch.cons ()))
          (Sdfg.channels g);
        ignore
          (Sdfg.Builder.add_channel b ~name:"fz$self" ~tokens:m ~src:a ~dst:a
             ~prod:1 ~cons:1 ());
        let g' = Sdfg.Builder.build b in
        compare_runs
          ~what:
            (Printf.sprintf "neutral self-edge on %s (%d tokens)"
               (Sdfg.actor_name g a) m)
          ~image:Fun.id ~transform:Fun.id g
          (selftimed ~max_states g c.Case.taus)
          (selftimed ~max_states g' c.Case.taus)

let oracles =
  [
    Oracle.{ name = "meta.renaming"; run = renaming };
    Oracle.{ name = "meta.permutation"; run = permutation };
    Oracle.{ name = "meta.time-scaling"; run = time_scaling };
    Oracle.{ name = "meta.neutral-self-edge"; run = neutral_self_edge };
  ]
