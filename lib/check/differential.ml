module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Selftimed = Analysis.Selftimed
module Mcr = Analysis.Mcr

let mutant = ref false

(* The self-timed route, with blow-ups and deadlocks reified. *)
type st_outcome =
  | St of Selftimed.result
  | St_deadlock
  | St_exceeded

let selftimed ~max_states (c : Case.t) =
  match Selftimed.analyze ~max_states c.Case.graph c.Case.taus with
  | r -> St r
  | exception Selftimed.Deadlocked -> St_deadlock
  | exception Selftimed.State_space_exceeded _ -> St_exceeded

let selftimed_reference ~max_states (c : Case.t) =
  match Selftimed.analyze_reference ~max_states c.Case.graph c.Case.taus with
  | r -> St r
  | exception Selftimed.Deadlocked -> St_deadlock
  | exception Selftimed.State_space_exceeded _ -> St_exceeded

(* Old-vs-new engine: the packed state-space engine must be behaviorally
   identical to the retained Marshal/Hashtbl reference — same throughput
   vector, period, iteration count, transient, visited-state count, and
   the same deadlock/cap outcomes. Nothing is skipped: a cap abort on one
   side must be a cap abort on the other. *)
let engine_vs_reference ~max_states ~rng:_ (c : Case.t) =
  match (selftimed ~max_states c, selftimed_reference ~max_states c) with
  | St_deadlock, St_deadlock | St_exceeded, St_exceeded -> Oracle.Pass
  | St_deadlock, _ -> Oracle.Fail "engine deadlocks but the reference runs"
  | _, St_deadlock -> Oracle.Fail "reference deadlocks but the engine runs"
  | St_exceeded, _ ->
      Oracle.Fail "engine exceeds the state cap but the reference finishes"
  | _, St_exceeded ->
      Oracle.Fail "reference exceeds the state cap but the engine finishes"
  | St e, St r ->
      if e.Selftimed.period <> r.Selftimed.period then
        Oracle.failf "engine period %d but reference period %d"
          e.Selftimed.period r.Selftimed.period
      else if
        e.Selftimed.iterations_per_period <> r.Selftimed.iterations_per_period
      then
        Oracle.failf "engine iterations %d but reference iterations %d"
          e.Selftimed.iterations_per_period r.Selftimed.iterations_per_period
      else if e.Selftimed.transient <> r.Selftimed.transient then
        Oracle.failf "engine transient %d but reference transient %d"
          e.Selftimed.transient r.Selftimed.transient
      else if e.Selftimed.states <> r.Selftimed.states then
        Oracle.failf "engine explored %d states but the reference %d"
          e.Selftimed.states r.Selftimed.states
      else if
        not
          (Array.for_all2 Rat.equal e.Selftimed.throughput
             r.Selftimed.throughput)
      then Oracle.Fail "engine and reference throughput vectors differ"
      else Oracle.Pass

(* The independent route: HSDF expansion, then Karp's maximum cycle ratio.
   Under the injected mutant, the replay is corrupted by an off-by-one in
   the initial-token count of the first HSDF channel — the kind of silent
   divergence the differential oracle exists to catch. *)
type mcr_outcome =
  | Mcr_rate of int array * Rat.t  (** gamma, iteration rate [1/MCR] *)
  | Mcr_deadlock
  | Mcr_unbounded  (** acyclic or zero-time critical cycle *)

let mcr_route (c : Case.t) =
  let gamma = Sdf.Repetition.vector_exn c.Case.graph in
  let h = Sdf.Hsdf.convert c.Case.graph gamma in
  let hg =
    if !mutant then
      Sdfg.map_tokens h.Sdf.Hsdf.graph (fun ch ->
          if ch.Sdfg.c_idx = 0 then ch.Sdfg.tokens + 1 else ch.Sdfg.tokens)
    else h.Sdf.Hsdf.graph
  in
  let htaus = Sdf.Hsdf.timing h c.Case.taus in
  match Mcr.max_cycle_ratio hg htaus with
  | Mcr.Acyclic -> Mcr_unbounded
  | Mcr.Zero_token_cycle _ -> Mcr_deadlock
  | Mcr.Ratio r ->
      if Rat.compare r Rat.zero <= 0 then Mcr_unbounded
      else Mcr_rate (gamma, Rat.inv r)

let selftimed_vs_mcr ~max_states ~rng:_ (c : Case.t) =
  match (selftimed ~max_states c, mcr_route c) with
  | St_exceeded, _ -> Oracle.Skip "state space exceeded"
  | _, Mcr_unbounded -> Oracle.Skip "no finite MCR bound"
  | St_deadlock, Mcr_deadlock -> Oracle.Pass
  | St_deadlock, Mcr_rate _ ->
      Oracle.Fail "self-timed execution deadlocks but the HSDF MCR is finite"
  | St st, Mcr_deadlock ->
      Oracle.failf
        "MCR found a zero-token HSDF cycle but the self-timed execution \
         runs (period %d)"
        st.Selftimed.period
  | St st, Mcr_rate (gamma, rate) ->
      let n = Sdfg.num_actors c.Case.graph in
      let rec verify a =
        if a >= n then Oracle.Pass
        else
          let expected = Rat.mul_int rate gamma.(a) in
          if Rat.equal st.Selftimed.throughput.(a) expected then verify (a + 1)
          else
            Oracle.failf
              "actor %s: self-timed throughput %s but gamma/MCR predicts %s"
              (Sdfg.actor_name c.Case.graph a)
              (Rat.to_string st.Selftimed.throughput.(a))
              (Rat.to_string expected)
      in
      verify 0

(* The sharded frontier sweep must be result-identical to the sequential
   engine at every domain count — same throughput vector, period,
   transient, recurrence index and deadlock/cap outcomes. Run with the
   memo disabled so the sweep actually executes instead of replaying the
   sequential run's cached outcome. *)
let parallel_vs_sequential ~max_states ~rng:_ (c : Case.t) =
  let was_enabled = Analysis.Memo.enabled () in
  Fun.protect
    ~finally:(fun () -> Analysis.Memo.set_enabled was_enabled)
    (fun () ->
      Analysis.Memo.set_enabled false;
      let seq = selftimed ~max_states c in
      let parallel k =
        match
          Selftimed.analyze_parallel ~domains:k ~max_states c.Case.graph
            c.Case.taus
        with
        | r -> St r
        | exception Selftimed.Deadlocked -> St_deadlock
        | exception Selftimed.State_space_exceeded _ -> St_exceeded
      in
      let rec check = function
        | [] -> Oracle.Pass
        | k :: rest -> (
            match (seq, parallel k) with
            | St_deadlock, St_deadlock | St_exceeded, St_exceeded ->
                check rest
            | St a, St b
              when a.Selftimed.period = b.Selftimed.period
                   && a.Selftimed.iterations_per_period
                      = b.Selftimed.iterations_per_period
                   && a.Selftimed.transient = b.Selftimed.transient
                   && a.Selftimed.states = b.Selftimed.states
                   && Array.for_all2 Rat.equal a.Selftimed.throughput
                        b.Selftimed.throughput ->
                check rest
            | St _, St _ ->
                Oracle.failf
                  "parallel sweep (domains %d) diverges from the sequential \
                   engine"
                  k
            | _, St_deadlock | _, St_exceeded | St_deadlock, _ | St_exceeded, _
              ->
                Oracle.failf
                  "parallel sweep (domains %d) outcome differs from the \
                   sequential engine"
                  k)
      in
      check [ 2; 4 ])

(* Memoized, cache-warm and memo-disabled replays must be outcome- and
   value-identical (PR 2's negative-outcome caching included). *)
let memo_agreement ~max_states ~rng:_ (c : Case.t) =
  let was_enabled = Analysis.Memo.enabled () in
  Fun.protect
    ~finally:(fun () -> Analysis.Memo.set_enabled was_enabled)
    (fun () ->
      Analysis.Memo.set_enabled true;
      Analysis.Memo.clear_all ();
      let cold = selftimed ~max_states c in
      let warm = selftimed ~max_states c in
      Analysis.Memo.set_enabled false;
      let off = selftimed ~max_states c in
      let agree a b =
        match (a, b) with
        | St ra, St rb ->
            ra.Selftimed.period = rb.Selftimed.period
            && ra.Selftimed.transient = rb.Selftimed.transient
            && Array.for_all2 Rat.equal ra.Selftimed.throughput
                 rb.Selftimed.throughput
        | St_deadlock, St_deadlock | St_exceeded, St_exceeded -> true
        | _ -> false
      in
      match cold with
      | St_exceeded when agree cold warm && agree cold off ->
          Oracle.Skip "state space exceeded"
      | _ ->
          if not (agree cold warm) then
            Oracle.Fail "memo replay (cache hit) diverges from cold analysis"
          else if not (agree cold off) then
            Oracle.Fail "memo-disabled analysis diverges from memoized one"
          else Oracle.Pass)

(* Anytime soundness: under a random finite state budget, a partial
   outcome's throughput upper bound must dominate the true throughput
   (computed by the independent reference engine), a [provably_dead]
   verdict must mean the graph really deadlocks, [dead_ruled_out] must
   mean it really does not, and a budgeted run that completes must agree
   with the unbudgeted one. *)
let budget_partial_soundness ~max_states ~rng (c : Case.t) =
  let cap = 1 + Gen.Rng.int rng 64 in
  let budget = Budget.make ~max_states:cap () in
  let budgeted =
    match
      Selftimed.analyze_budgeted ~max_states ~budget c.Case.graph c.Case.taus
    with
    | r -> `Run r
    | exception Selftimed.Deadlocked -> `Deadlock
    | exception Selftimed.State_space_exceeded _ -> `Exceeded
  in
  match (budgeted, selftimed_reference ~max_states c) with
  | `Exceeded, St_exceeded -> Oracle.Skip "state space exceeded"
  | _, St_exceeded -> Oracle.Skip "reference exceeds the state cap"
  | `Exceeded, _ ->
      Oracle.failf
        "budgeted run hit the hard cap (budget %d) but the reference finishes"
        cap
  | `Deadlock, St_deadlock -> Oracle.Pass
  | `Deadlock, St _ ->
      Oracle.Fail "budgeted run deadlocks but the reference runs"
  | `Run (Ok r), St_deadlock ->
      Oracle.failf
        "budgeted run completes (period %d) but the reference deadlocks"
        r.Selftimed.period
  | `Run (Ok r), St ref_r ->
      if
        r.Selftimed.period = ref_r.Selftimed.period
        && Array.for_all2 Rat.equal r.Selftimed.throughput
             ref_r.Selftimed.throughput
      then Oracle.Pass
      else
        Oracle.failf "budgeted complete run (budget %d) diverges from reference"
          cap
  | `Run (Error p), St_deadlock ->
      if p.Selftimed.dead_ruled_out then
        Oracle.Fail "partial outcome rules out deadlock but the graph deadlocks"
      else Oracle.Pass
  | `Run (Error p), St ref_r ->
      if p.Selftimed.provably_dead then
        Oracle.Fail "partial outcome claims provably dead but the graph runs"
      else
        let n = Sdfg.num_actors c.Case.graph in
        let rec verify a =
          if a >= n then Oracle.Pass
          else if
            Rat.is_infinite p.Selftimed.upper_bound.(a)
            || Rat.compare p.Selftimed.upper_bound.(a)
                 ref_r.Selftimed.throughput.(a)
               >= 0
          then verify (a + 1)
          else
            Oracle.failf
              "actor %s: anytime upper bound %s below true throughput %s \
               (budget %d, explored %d)"
              (Sdfg.actor_name c.Case.graph a)
              (Rat.to_string p.Selftimed.upper_bound.(a))
              (Rat.to_string ref_r.Selftimed.throughput.(a))
              cap p.Selftimed.explored
        in
        verify 0

let oracles =
  [
    Oracle.{ name = "diff.engine-vs-reference"; run = engine_vs_reference };
    Oracle.
      { name = "diff.parallel-vs-sequential"; run = parallel_vs_sequential };
    Oracle.{ name = "diff.selftimed-vs-mcr"; run = selftimed_vs_mcr };
    Oracle.{ name = "diff.memo-agreement"; run = memo_agreement };
    Oracle.
      { name = "budget.partial-soundness"; run = budget_partial_soundness };
  ]
