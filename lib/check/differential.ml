module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Selftimed = Analysis.Selftimed
module Mcr = Analysis.Mcr

let mutant = ref false
let scenario_mutant = ref false

(* The self-timed route, with blow-ups and deadlocks reified. *)
type st_outcome =
  | St of Selftimed.result
  | St_deadlock
  | St_exceeded

let selftimed ~max_states (c : Case.t) =
  match Selftimed.analyze ~max_states c.Case.graph c.Case.taus with
  | r -> St r
  | exception Selftimed.Deadlocked -> St_deadlock
  | exception Selftimed.State_space_exceeded _ -> St_exceeded

let selftimed_reference ~max_states (c : Case.t) =
  match Selftimed.analyze_reference ~max_states c.Case.graph c.Case.taus with
  | r -> St r
  | exception Selftimed.Deadlocked -> St_deadlock
  | exception Selftimed.State_space_exceeded _ -> St_exceeded

(* Old-vs-new engine: the packed state-space engine must be behaviorally
   identical to the retained Marshal/Hashtbl reference — same throughput
   vector, period, iteration count, transient, visited-state count, and
   the same deadlock/cap outcomes. Nothing is skipped: a cap abort on one
   side must be a cap abort on the other. *)
let engine_vs_reference ~max_states ~rng:_ (c : Case.t) =
  match (selftimed ~max_states c, selftimed_reference ~max_states c) with
  | St_deadlock, St_deadlock | St_exceeded, St_exceeded -> Oracle.Pass
  | St_deadlock, _ -> Oracle.Fail "engine deadlocks but the reference runs"
  | _, St_deadlock -> Oracle.Fail "reference deadlocks but the engine runs"
  | St_exceeded, _ ->
      Oracle.Fail "engine exceeds the state cap but the reference finishes"
  | _, St_exceeded ->
      Oracle.Fail "reference exceeds the state cap but the engine finishes"
  | St e, St r ->
      if e.Selftimed.period <> r.Selftimed.period then
        Oracle.failf "engine period %d but reference period %d"
          e.Selftimed.period r.Selftimed.period
      else if
        e.Selftimed.iterations_per_period <> r.Selftimed.iterations_per_period
      then
        Oracle.failf "engine iterations %d but reference iterations %d"
          e.Selftimed.iterations_per_period r.Selftimed.iterations_per_period
      else if e.Selftimed.transient <> r.Selftimed.transient then
        Oracle.failf "engine transient %d but reference transient %d"
          e.Selftimed.transient r.Selftimed.transient
      else if e.Selftimed.states <> r.Selftimed.states then
        Oracle.failf "engine explored %d states but the reference %d"
          e.Selftimed.states r.Selftimed.states
      else if
        not
          (Array.for_all2 Rat.equal e.Selftimed.throughput
             r.Selftimed.throughput)
      then Oracle.Fail "engine and reference throughput vectors differ"
      else Oracle.Pass

(* The independent route: HSDF expansion, then Karp's maximum cycle ratio.
   Under the injected mutant, the replay is corrupted by an off-by-one in
   the initial-token count of the first HSDF channel — the kind of silent
   divergence the differential oracle exists to catch. *)
type mcr_outcome =
  | Mcr_rate of int array * Rat.t  (** gamma, iteration rate [1/MCR] *)
  | Mcr_deadlock
  | Mcr_unbounded  (** acyclic or zero-time critical cycle *)

let mcr_route (c : Case.t) =
  let gamma = Sdf.Repetition.vector_exn c.Case.graph in
  let h = Sdf.Hsdf.convert c.Case.graph gamma in
  let hg =
    if !mutant then
      Sdfg.map_tokens h.Sdf.Hsdf.graph (fun ch ->
          if ch.Sdfg.c_idx = 0 then ch.Sdfg.tokens + 1 else ch.Sdfg.tokens)
    else h.Sdf.Hsdf.graph
  in
  let htaus = Sdf.Hsdf.timing h c.Case.taus in
  match Mcr.max_cycle_ratio hg htaus with
  | Mcr.Acyclic -> Mcr_unbounded
  | Mcr.Zero_token_cycle _ -> Mcr_deadlock
  | Mcr.Ratio r ->
      if Rat.compare r Rat.zero <= 0 then Mcr_unbounded
      else Mcr_rate (gamma, Rat.inv r)

let selftimed_vs_mcr ~max_states ~rng:_ (c : Case.t) =
  match (selftimed ~max_states c, mcr_route c) with
  | St_exceeded, _ -> Oracle.Skip "state space exceeded"
  | _, Mcr_unbounded -> Oracle.Skip "no finite MCR bound"
  | St_deadlock, Mcr_deadlock -> Oracle.Pass
  | St_deadlock, Mcr_rate _ ->
      Oracle.Fail "self-timed execution deadlocks but the HSDF MCR is finite"
  | St st, Mcr_deadlock ->
      Oracle.failf
        "MCR found a zero-token HSDF cycle but the self-timed execution \
         runs (period %d)"
        st.Selftimed.period
  | St st, Mcr_rate (gamma, rate) ->
      let n = Sdfg.num_actors c.Case.graph in
      let rec verify a =
        if a >= n then Oracle.Pass
        else
          let expected = Rat.mul_int rate gamma.(a) in
          if Rat.equal st.Selftimed.throughput.(a) expected then verify (a + 1)
          else
            Oracle.failf
              "actor %s: self-timed throughput %s but gamma/MCR predicts %s"
              (Sdfg.actor_name c.Case.graph a)
              (Rat.to_string st.Selftimed.throughput.(a))
              (Rat.to_string expected)
      in
      verify 0

(* The sharded frontier sweep must be result-identical to the sequential
   engine at every domain count — same throughput vector, period,
   transient, recurrence index and deadlock/cap outcomes. Run with the
   memo disabled so the sweep actually executes instead of replaying the
   sequential run's cached outcome. *)
let parallel_vs_sequential ~max_states ~rng:_ (c : Case.t) =
  let was_enabled = Analysis.Memo.enabled () in
  Fun.protect
    ~finally:(fun () -> Analysis.Memo.set_enabled was_enabled)
    (fun () ->
      Analysis.Memo.set_enabled false;
      let seq = selftimed ~max_states c in
      let parallel k =
        match
          Selftimed.analyze_parallel ~domains:k ~max_states c.Case.graph
            c.Case.taus
        with
        | r -> St r
        | exception Selftimed.Deadlocked -> St_deadlock
        | exception Selftimed.State_space_exceeded _ -> St_exceeded
      in
      let rec check = function
        | [] -> Oracle.Pass
        | k :: rest -> (
            match (seq, parallel k) with
            | St_deadlock, St_deadlock | St_exceeded, St_exceeded ->
                check rest
            | St a, St b
              when a.Selftimed.period = b.Selftimed.period
                   && a.Selftimed.iterations_per_period
                      = b.Selftimed.iterations_per_period
                   && a.Selftimed.transient = b.Selftimed.transient
                   && a.Selftimed.states = b.Selftimed.states
                   && Array.for_all2 Rat.equal a.Selftimed.throughput
                        b.Selftimed.throughput ->
                check rest
            | St _, St _ ->
                Oracle.failf
                  "parallel sweep (domains %d) diverges from the sequential \
                   engine"
                  k
            | _, St_deadlock | _, St_exceeded | St_deadlock, _ | St_exceeded, _
              ->
                Oracle.failf
                  "parallel sweep (domains %d) outcome differs from the \
                   sequential engine"
                  k)
      in
      check [ 2; 4 ])

(* Memoized, cache-warm and memo-disabled replays must be outcome- and
   value-identical (PR 2's negative-outcome caching included). *)
let memo_agreement ~max_states ~rng:_ (c : Case.t) =
  let was_enabled = Analysis.Memo.enabled () in
  Fun.protect
    ~finally:(fun () -> Analysis.Memo.set_enabled was_enabled)
    (fun () ->
      Analysis.Memo.set_enabled true;
      Analysis.Memo.clear_all ();
      let cold = selftimed ~max_states c in
      let warm = selftimed ~max_states c in
      Analysis.Memo.set_enabled false;
      let off = selftimed ~max_states c in
      let agree a b =
        match (a, b) with
        | St ra, St rb ->
            ra.Selftimed.period = rb.Selftimed.period
            && ra.Selftimed.transient = rb.Selftimed.transient
            && Array.for_all2 Rat.equal ra.Selftimed.throughput
                 rb.Selftimed.throughput
        | St_deadlock, St_deadlock | St_exceeded, St_exceeded -> true
        | _ -> false
      in
      match cold with
      | St_exceeded when agree cold warm && agree cold off ->
          Oracle.Skip "state space exceeded"
      | _ ->
          if not (agree cold warm) then
            Oracle.Fail "memo replay (cache hit) diverges from cold analysis"
          else if not (agree cold off) then
            Oracle.Fail "memo-disabled analysis diverges from memoized one"
          else Oracle.Pass)

(* Anytime soundness: under a random finite state budget, a partial
   outcome's throughput upper bound must dominate the true throughput
   (computed by the independent reference engine), a [provably_dead]
   verdict must mean the graph really deadlocks, [dead_ruled_out] must
   mean it really does not, and a budgeted run that completes must agree
   with the unbudgeted one. *)
let budget_partial_soundness ~max_states ~rng (c : Case.t) =
  let cap = 1 + Gen.Rng.int rng 64 in
  let budget = Budget.make ~max_states:cap () in
  let budgeted =
    match
      Selftimed.analyze_budgeted ~max_states ~budget c.Case.graph c.Case.taus
    with
    | r -> `Run r
    | exception Selftimed.Deadlocked -> `Deadlock
    | exception Selftimed.State_space_exceeded _ -> `Exceeded
  in
  match (budgeted, selftimed_reference ~max_states c) with
  | `Exceeded, St_exceeded -> Oracle.Skip "state space exceeded"
  | _, St_exceeded -> Oracle.Skip "reference exceeds the state cap"
  | `Exceeded, _ ->
      Oracle.failf
        "budgeted run hit the hard cap (budget %d) but the reference finishes"
        cap
  | `Deadlock, St_deadlock -> Oracle.Pass
  | `Deadlock, St _ ->
      Oracle.Fail "budgeted run deadlocks but the reference runs"
  | `Run (Ok r), St_deadlock ->
      Oracle.failf
        "budgeted run completes (period %d) but the reference deadlocks"
        r.Selftimed.period
  | `Run (Ok r), St ref_r ->
      if
        r.Selftimed.period = ref_r.Selftimed.period
        && Array.for_all2 Rat.equal r.Selftimed.throughput
             ref_r.Selftimed.throughput
      then Oracle.Pass
      else
        Oracle.failf "budgeted complete run (budget %d) diverges from reference"
          cap
  | `Run (Error p), St_deadlock ->
      if p.Selftimed.dead_ruled_out then
        Oracle.Fail "partial outcome rules out deadlock but the graph deadlocks"
      else Oracle.Pass
  | `Run (Error p), St ref_r ->
      if p.Selftimed.provably_dead then
        Oracle.Fail "partial outcome claims provably dead but the graph runs"
      else
        let n = Sdfg.num_actors c.Case.graph in
        let rec verify a =
          if a >= n then Oracle.Pass
          else if
            Rat.is_infinite p.Selftimed.upper_bound.(a)
            || Rat.compare p.Selftimed.upper_bound.(a)
                 ref_r.Selftimed.throughput.(a)
               >= 0
          then verify (a + 1)
          else
            Oracle.failf
              "actor %s: anytime upper bound %s below true throughput %s \
               (budget %d, explored %d)"
              (Sdfg.actor_name c.Case.graph a)
              (Rat.to_string p.Selftimed.upper_bound.(a))
              (Rat.to_string ref_r.Selftimed.throughput.(a))
              cap p.Selftimed.explored
        in
        verify 0

(* ------------------------------------------------------------------ *)
(* Scenario product vs. brute-force enumeration: derive a small scenario
   FSM from the case, build the product automaton a second time with a
   deliberately naive, structurally independent implementation (unsorted
   token lists, chronological one-firing-at-a-time simulation, Hashtbl
   interning), enumerate ALL its simple cycles, and check that the
   engine's Karp-based worst-case rate equals the enumeration's exactly.
   The hidden scenario mutant drops every mode-transition delay on the
   engine's side only; the enumeration keeps them, so any positive delay
   on a critical cycle is a detected divergence. *)

module Sfsm = Scenario.Fsm
module Product = Scenario.Product

(* One mode occurrence, chronological: among the firings still owed to
   the iteration, always perform one with the earliest possible start.
   Kahn determinism makes the result equal to the engine's actor-scan
   fixpoint; nothing else is shared with it. *)
let naive_iteration (fsm : Sfsm.t) m queues =
  let g = fsm.Sfsm.graph in
  let md = fsm.Sfsm.modes.(m) in
  let q = Array.map (fun l -> l) queues in
  let remaining = Array.copy fsm.Sfsm.gamma.(m) in
  let total = ref (Array.fold_left ( + ) 0 remaining) in
  let fmax = ref 0 in
  let start_of a =
    (* None when not enabled; otherwise the earliest possible start *)
    let rec go acc = function
      | [] -> Some acc
      | ci :: rest ->
          let cons = snd md.Sfsm.rates.(ci) in
          let sorted = List.sort compare q.(ci) in
          if List.length sorted < cons then None
          else go (max acc (List.nth sorted (cons - 1))) rest
    in
    go 0 (Sdfg.in_channels g a)
  in
  let fire a start =
    List.iter
      (fun ci ->
        let cons = snd md.Sfsm.rates.(ci) in
        let sorted = List.sort compare q.(ci) in
        q.(ci) <- List.filteri (fun i _ -> i >= cons) sorted)
      (Sdfg.in_channels g a);
    let fin = start + md.Sfsm.taus.(a) in
    if fin > !fmax then fmax := fin;
    List.iter
      (fun ci ->
        let prod = fst md.Sfsm.rates.(ci) in
        q.(ci) <- List.init prod (fun _ -> fin) @ q.(ci))
      (Sdfg.out_channels g a)
  in
  let n = Sdfg.num_actors g in
  let rec run () =
    if !total = 0 then Some (Array.map (List.sort compare) q, !fmax)
    else begin
      let best = ref None in
      for a = 0 to n - 1 do
        if remaining.(a) > 0 then
          match start_of a with
          | None -> ()
          | Some s -> (
              match !best with
              | Some (_, s') when s' <= s -> ()
              | _ -> best := Some (a, s))
      done;
      match !best with
      | None -> None (* the iteration is stuck: deadlock *)
      | Some (a, s) ->
          fire a s;
          remaining.(a) <- remaining.(a) - 1;
          decr total;
          run ()
    end
  in
  run ()

type naive_product =
  | Np_too_big
  | Np_dead
  | Np_graph of int * (int * int * int) list  (** states, (src,dst,weight) *)

let naive_product (fsm : Sfsm.t) ~cap =
  let tbl = Hashtbl.create 64 in
  let next = ref 0 in
  let edges = ref [] in
  let work = Queue.create () in
  let intern key =
    match Hashtbl.find_opt tbl key with
    | Some id -> (id, false)
    | None ->
        let id = !next in
        incr next;
        Hashtbl.add tbl key id;
        (id, true)
  in
  let initial =
    ( fsm.Sfsm.initial,
      Array.map
        (fun (c : Sdfg.channel) -> List.init c.Sdfg.tokens (fun _ -> 0))
        (Sdfg.channels fsm.Sfsm.graph) )
  in
  let id0, _ = intern initial in
  Queue.add (id0, initial) work;
  let exception Dead in
  let exception Too_big in
  match
    while not (Queue.is_empty work) do
      let id, (m, queues) = Queue.pop work in
      match naive_iteration fsm m queues with
      | None -> raise Dead
      | Some (q, f) ->
          Array.iter
            (fun (dst, delay) ->
              let clamped =
                if delay = 0 then q
                else Array.map (List.map (max (f + delay))) q
              in
              let mn =
                Array.fold_left (List.fold_left min) max_int clamped
              in
              let shift = if mn = max_int then 0 else mn in
              let norm =
                if shift = 0 then clamped
                else Array.map (List.map (fun ts -> ts - shift)) clamped
              in
              let sid, fresh = intern (dst, norm) in
              edges := (id, sid, shift) :: !edges;
              if fresh then begin
                if !next > cap then raise Too_big;
                Queue.add (sid, (dst, norm)) work
              end)
            fsm.Sfsm.out.(m)
    done
  with
  | () -> Np_graph (!next, !edges)
  | exception Dead -> Np_dead
  | exception Too_big -> Np_too_big

(* Every simple cycle, rooted at its minimal vertex so each is found
   exactly once; [`Best (weight, length)] maximises weight/length. *)
let enumerate_cycles n edges ~cap =
  let adj = Array.make n [] in
  List.iter (fun (s, d, w) -> adj.(s) <- (d, w) :: adj.(s)) edges;
  let count = ref 0 in
  let best = ref None in
  let onpath = Array.make n false in
  let exception Too_many in
  let rec dfs root v wsum len =
    List.iter
      (fun (u, w) ->
        if u = root then begin
          incr count;
          if !count > cap then raise Too_many;
          let w' = wsum + w and l' = len + 1 in
          match !best with
          | None -> best := Some (w', l')
          | Some (bw, bl) -> if w' * bl > bw * l' then best := Some (w', l')
        end
        else if u > root && not onpath.(u) then begin
          onpath.(u) <- true;
          dfs root u (wsum + w) (len + 1);
          onpath.(u) <- false
        end)
      adj.(v)
  in
  match
    for root = 0 to n - 1 do
      onpath.(root) <- true;
      dfs root root 0 0;
      onpath.(root) <- false
    done
  with
  | () -> `Best (!best, !count)
  | exception Too_many -> `Too_many

let scenario_vs_enumeration ~max_states:_ ~rng (c : Case.t) =
  match Gen.Scenariogen.derive rng c.Case.graph c.Case.taus with
  | exception Invalid_argument _ -> Oracle.Skip "scenario derivation rejected"
  | fsm -> (
      let fsm_engine =
        if !scenario_mutant then
          Sfsm.make ~name:fsm.Sfsm.name ~graph:fsm.Sfsm.graph
            ~modes:fsm.Sfsm.modes
            ~transitions:
              (Array.map
                 (fun tr -> { tr with Sfsm.delay = 0 })
                 fsm.Sfsm.transitions)
            ~initial:fsm.Sfsm.initial
        else fsm
      in
      let engine =
        match Product.analyze ~max_states:5_000 fsm_engine with
        | r -> `Res r
        | exception Product.Deadlocked -> `Dead
        | exception Product.State_space_exceeded _ -> `Exceeded
      in
      match naive_product fsm ~cap:400 with
      | Np_too_big -> Oracle.Skip "product automaton too large to enumerate"
      | Np_dead -> (
          match engine with
          | `Dead -> Oracle.Pass
          | _ ->
              Oracle.Fail
                "enumeration finds a reachable deadlock but the product \
                 engine does not")
      | Np_graph (nstates, edges) -> (
          match engine with
          | `Dead ->
              Oracle.Fail
                "product engine deadlocks but the enumeration explores the \
                 full automaton"
          | `Exceeded ->
              Oracle.failf
                "product engine exceeds its state cap but the enumeration \
                 stores only %d states"
                nstates
          | `Res r ->
              if r.Product.product_states <> nstates then
                Oracle.failf
                  "product engine stores %d states but the enumeration %d"
                  r.Product.product_states nstates
              else (
                match enumerate_cycles nstates edges ~cap:20_000 with
                | `Too_many -> Oracle.Skip "too many simple cycles"
                | `Best (None, _) ->
                    Oracle.Fail
                      "complete product automaton has no cycle (impossible: \
                       every state has a successor)"
                | `Best (Some (w, l), ncycles) ->
                    let naive_rate =
                      if w = 0 then Rat.infinity else Rat.make l w
                    in
                    if Rat.equal r.Product.worst_rate naive_rate then
                      Oracle.Pass
                    else
                      Oracle.failf
                        "worst-case rate %s (Karp on the product) but %s \
                         (max mean over %d enumerated simple cycles)"
                        (Rat.to_string r.Product.worst_rate)
                        (Rat.to_string naive_rate) ncycles)))

let oracles =
  [
    Oracle.{ name = "diff.engine-vs-reference"; run = engine_vs_reference };
    Oracle.
      { name = "diff.parallel-vs-sequential"; run = parallel_vs_sequential };
    Oracle.{ name = "diff.selftimed-vs-mcr"; run = selftimed_vs_mcr };
    Oracle.{ name = "diff.memo-agreement"; run = memo_agreement };
    Oracle.
      { name = "budget.partial-soundness"; run = budget_partial_soundness };
    Oracle.
      { name = "diff.scenario-vs-enumeration"; run = scenario_vs_enumeration };
  ]
