(** The persisted regression corpus: every shrunk counterexample the
    fuzzer ever produced, plus hand-seeded minimal graphs, stored as
    [test/corpus/*.sdfg] in the {!Sdf.Textio} format (with execution
    times) and replayed on every [dune runtest]. *)

val default_dir : string
(** ["test/corpus"] — where [sdf3_fuzz] writes counterexamples when run
    from the repository root. *)

val save : dir:string -> Case.t -> string
(** Write [<name>.sdfg] into [dir] (created if missing); returns the
    path. *)

val load_file : string -> Case.t
(** @raise Sdf.Textio.Parse_error or [Sys_error]. *)

val load_dir : string -> Case.t list
(** All [*.sdfg] files of the directory in name order; [] when the
    directory does not exist. *)

val replay : max_states:int -> Case.t -> (string * Oracle.outcome) list
(** Run the full differential + metamorphic catalogue on one case. The
    metamorphic randomness is seeded from the case name, so replays are
    deterministic run over run. *)

val failures : (string * Oracle.outcome) list -> (string * string) list
(** The [Fail] entries of a replay, as [(oracle, message)]. *)
