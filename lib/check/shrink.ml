type result = {
  case : Gen.Shrink.case;
  steps : int;
  still_failing : bool;
}

let minimize ?(max_steps = 500) ~fails case =
  if not (fails case) then { case; steps = 0; still_failing = false }
  else
    let rec loop case steps =
      if steps >= max_steps then { case; steps; still_failing = true }
      else
        match List.find_opt fails (Gen.Shrink.candidates case) with
        | None -> { case; steps; still_failing = true }
        | Some smaller -> loop smaller (steps + 1)
    in
    loop case 0
