module Sdfg = Sdf.Sdfg

type t = { name : string; graph : Sdfg.t; taus : int array }

let of_shrink ~name (c : Gen.Shrink.case) =
  { name; graph = c.Gen.Shrink.graph; taus = c.Gen.Shrink.taus }

let to_shrink (t : t) = Gen.Shrink.{ graph = t.graph; taus = t.taus }
let well_formed t = Gen.Shrink.well_formed (to_shrink t)
let to_text t = Sdf.Textio.print ~exec_times:t.taus t.name t.graph

let of_document (d : Sdf.Textio.document) =
  let taus =
    match d.Sdf.Textio.exec_times with
    | Some e -> e
    | None -> Array.make (Sdfg.num_actors d.Sdf.Textio.graph) 1
  in
  { name = d.Sdf.Textio.doc_name; graph = d.Sdf.Textio.graph; taus }

let pp ppf t =
  Format.fprintf ppf "%s (%d actors, %d channels)" t.name
    (Sdfg.num_actors t.graph)
    (Sdfg.num_channels t.graph)
