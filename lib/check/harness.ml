module Sdfg = Sdf.Sdfg
module Appgraph = Appmodel.Appgraph

type config = {
  seed : int;
  count : int;
  time_budget : float option;
  max_states : int;
  mutant : bool;
  scenario_mutant : bool;
  corpus_dir : string option;
  app_every : int;
  log : string -> unit;
}

let default =
  {
    seed = 1;
    count = 200;
    time_budget = None;
    max_states = 50_000;
    mutant = false;
    scenario_mutant = false;
    corpus_dir = None;
    app_every = 10;
    log = ignore;
  }

(* Small graphs with small repetition vectors: the oracles replay every
   case through half a dozen state-space explorations, so the per-case
   state spaces must stay tiny for a 500-case run to be a test, not a
   benchmark. *)
let fuzz_profile =
  Gen.Sdfgen.
    {
      p_name = "fuzz";
      n_actors = (2, 6);
      max_rep = 3;
      multirate_prob = 0.4;
      extra_edge_prob = 0.2;
      self_loop_prob = 0.3;
      tau = (1, 6);
      tau_spread = 0.5;
      mu = (100, 1_000);
      sz = (50, 200);
      alpha = (1, 2);
      beta = (20, 100);
      lambda_divisor = 8;
    }

type counterexample = {
  oracle : string;
  message : string;
  original : Case.t;
  shrunk : Case.t;
  shrink_steps : int;
  written : string option;
}

type summary = {
  cases : int;
  checks : int;
  skips : int;
  counterexample : counterexample option;
}

let throughput_oracles = Differential.oracles @ Metamorphic.oracles

let sanitize name =
  String.map (fun c -> if c = '.' || c = '/' then '-' else c) name

let run cfg =
  Differential.mutant := cfg.mutant;
  Differential.scenario_mutant := cfg.scenario_mutant;
  Fun.protect ~finally:(fun () ->
      Differential.mutant := false;
      Differential.scenario_mutant := false)
  @@ fun () ->
  let master = Gen.Rng.create ~seed:cfg.seed in
  let deadline =
    Option.map (fun s -> Unix.gettimeofday () +. s) cfg.time_budget
  in
  let out_of_time () =
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  in
  let checks = ref 0 and skips = ref 0 in
  let arch = Gen.Benchsets.architecture 0 in
  let max_states = cfg.max_states in
  (* One deterministic oracle seed per case: shrinking re-evaluates the
     failing oracle with a fresh RNG from the same seed, so the predicate
     is stable across candidates. *)
  let run_oracle (o : Oracle.t) ~oracle_seed case =
    o.Oracle.run ~max_states ~rng:(Gen.Rng.create ~seed:oracle_seed) case
  in
  let first_failure ~oracle_seed case =
    let rec go = function
      | [] -> None
      | o :: rest -> (
          incr checks;
          match run_oracle o ~oracle_seed case with
          | Oracle.Pass -> go rest
          | Oracle.Skip _ ->
              incr skips;
              go rest
          | Oracle.Fail msg -> Some (o, msg))
    in
    go throughput_oracles
  in
  let shrink_and_record i (o : Oracle.t) ~oracle_seed msg (case : Case.t) =
    cfg.log
      (Printf.sprintf "fuzz: FAIL %s on %s" o.Oracle.name case.Case.name);
    cfg.log ("  " ^ msg);
    let fails sc =
      match
        run_oracle o ~oracle_seed (Case.of_shrink ~name:case.Case.name sc)
      with
      | Oracle.Fail _ -> true
      | Oracle.Pass | Oracle.Skip _ -> false
      | exception _ -> false
    in
    let r = Shrink.minimize ~fails (Case.to_shrink case) in
    let shrunk =
      Case.of_shrink
        ~name:
          (Printf.sprintf "cex-%s-s%d-%d" (sanitize o.Oracle.name) cfg.seed i)
        r.Shrink.case
    in
    let written =
      Option.map (fun dir -> Corpus.save ~dir shrunk) cfg.corpus_dir
    in
    {
      oracle = o.Oracle.name;
      message = msg;
      original = case;
      shrunk;
      shrink_steps = r.Shrink.steps;
      written;
    }
  in
  let app_failure i (app : Appgraph.t) case_rng =
    if cfg.app_every <= 0 || (i + 1) mod cfg.app_every <> 0 then None
    else begin
      incr checks;
      match Validator.constrained_engine_agreement ~max_states app arch with
      | Oracle.Fail msg -> Some ("constrained.engine-vs-reference", msg)
      | (Oracle.Skip _ | Oracle.Pass) as first -> (
          (match first with Oracle.Skip _ -> incr skips | _ -> ());
          incr checks;
          match Validator.flow_invariance ~max_states app arch with
          | Oracle.Fail msg -> Some ("flow.invariance", msg)
          | Oracle.Skip _ ->
              incr skips;
              None
          | Oracle.Pass ->
          if (i + 1) mod (cfg.app_every * 5) <> 0 then None
          else begin
            incr checks;
            let extra k =
              Gen.Sdfgen.generate (Gen.Rng.split case_rng) fuzz_profile
                ~proc_types:Gen.Benchsets.proc_types
                ~name:(Printf.sprintf "%s-m%d" app.Appgraph.app_name k)
            in
            match
              Validator.multi_app_invariance ~max_states
                [ app; extra 0; extra 1 ]
                arch
            with
            | Oracle.Fail msg -> Some ("multi-app.invariance", msg)
            | Oracle.Skip _ ->
                incr skips;
                None
            | Oracle.Pass -> None
          end)
    end
  in
  let finish cases counterexample =
    { cases; checks = !checks; skips = !skips; counterexample }
  in
  let rec loop i =
    if i >= cfg.count || out_of_time () then finish i None
    else begin
      let case_rng = Gen.Rng.split master in
      let oracle_seed = cfg.seed + (1_000_003 * (i + 1)) in
      let app =
        Gen.Sdfgen.generate case_rng fuzz_profile
          ~proc_types:Gen.Benchsets.proc_types
          ~name:(Printf.sprintf "fz%d-%d" cfg.seed i)
      in
      let g = app.Appgraph.graph in
      let taus =
        Array.init (Sdfg.num_actors g) (fun a -> Appgraph.max_exec_time app a)
      in
      let case = { Case.name = app.Appgraph.app_name; graph = g; taus } in
      match first_failure ~oracle_seed case with
      | Some (o, msg) ->
          finish (i + 1) (Some (shrink_and_record i o ~oracle_seed msg case))
      | None -> (
          match app_failure i app case_rng with
          | Some (oracle, message) ->
              (* Application-level counterexamples are not bare SDFGs, so
                 they are reported (with the reproducing seed) rather than
                 shrunk into the corpus. *)
              finish (i + 1)
                (Some
                   {
                     oracle;
                     message;
                     original = case;
                     shrunk = case;
                     shrink_steps = 0;
                     written = None;
                   })
          | None -> loop (i + 1))
    end
  in
  loop 0
