module Appgraph = Appmodel.Appgraph
module Archgraph = Platform.Archgraph
module Strategy = Core.Strategy

(** Independent allocation validation and application-level differential
    oracles.

    {!validate} re-derives the paper's Section-7 resource constraints
    (slice within the available TDMA wheel, tile memory, NI connection
    count, in/out bandwidth, processor-type support, connection existence
    for split channels) and the throughput constraint straight from Gamma,
    Theta and the tile table — deliberately sharing no code with
    {!Core.Binding} or {!Core.Strategy}, so an accounting bug on either
    side surfaces as a disagreement rather than being validated by its own
    mirror image.

    The invariance oracles assert that the PR-2 memoization and work-pool
    layers are observationally invisible: {!Core.Flow} and
    {!Core.Multi_app} results are byte-identical (modulo wall-clock
    timings) with memoization on or off and with a pool of 1 or 2 jobs. *)

val validate :
  Archgraph.t -> Strategy.allocation -> (unit, string) result
(** [validate arch alloc] with [arch] the architecture the allocation was
    produced against (i.e. [alloc.arch] for a fresh allocation). *)

val allocation_summary : Strategy.allocation -> string
(** Canonical seconds-free rendering (throughput, check count, binding,
    slices); equal strings [<=>] equal allocations. *)

val constrained_engine_agreement :
  max_states:int -> Appgraph.t -> Archgraph.t -> Oracle.outcome
(** Binds the application (paper default weights (0,1,2)), builds the
    binding-aware graph under half-wheel slices, list-schedules it, and
    runs the constrained analysis through both the packed engine
    ({!Core.Constrained.analyze}) and the retained reference
    ({!Core.Constrained.analyze_reference}); every result field (and every
    reified negative outcome) must match. Skips when no feasible binding
    or schedule exists. *)

val flow_invariance :
  max_states:int -> Appgraph.t -> Archgraph.t -> Oracle.outcome
(** Runs {!Core.Flow.allocate_with_retry} under (memo, 1 job),
    (no memo, 1 job) and (memo, 2 jobs); all three must agree attempt by
    attempt, and a successful allocation must satisfy both {!validate}
    and {!Core.Strategy.is_valid}. Restores the global memo/pool state. *)

val multi_app_invariance :
  max_states:int -> Appgraph.t list -> Archgraph.t -> Oracle.outcome
(** Same three configurations for
    {!Core.Multi_app.allocate_until_failure} under the [Skip_failed]
    policy; the full report (allocations, rejections, resource totals)
    must agree. *)
