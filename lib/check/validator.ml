module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph
module Strategy = Core.Strategy

(* Independent re-derivation of the Section-7 resource constraints from the
   raw allocation. Deliberately shares no code with Core.Binding /
   Core.Strategy: everything is recomputed from Gamma, Theta and the tile
   table, so a bookkeeping bug on either side shows up as a disagreement. *)

let validate arch (alloc : Strategy.allocation) =
  let app = alloc.Strategy.app in
  let g = app.Appgraph.graph in
  let n = Sdfg.num_actors g in
  let nt = Archgraph.num_tiles arch in
  let binding = alloc.Strategy.binding in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec actors a =
    if a >= n then Ok ()
    else if binding.(a) < 0 || binding.(a) >= nt then
      err "actor %s bound to no tile" (Sdfg.actor_name g a)
    else
      let tile = Archgraph.tile arch binding.(a) in
      match Appgraph.exec_time app a tile.Tile.proc_type with
      | None ->
          err "actor %s bound to unsupported processor type %s"
            (Sdfg.actor_name g a) tile.Tile.proc_type
      | Some _ -> actors (a + 1)
  in
  let slices () =
    let hosts = Array.make nt false in
    Array.iter (fun t -> if t >= 0 then hosts.(t) <- true) binding;
    let rec go t =
      if t >= nt then Ok ()
      else
        let tile = Archgraph.tile arch t in
        let omega = alloc.Strategy.slices.(t) in
        if omega < 0 || omega > Tile.available_wheel tile then
          err "tile %s: slice %d outside the available wheel [0, %d]"
            tile.Tile.t_name omega
            (Tile.available_wheel tile)
        else if hosts.(t) && omega = 0 then
          err "tile %s hosts actors but received no slice" tile.Tile.t_name
        else go (t + 1)
    in
    go 0
  in
  let resources () =
    let mem = Array.make nt 0
    and conns = Array.make nt 0
    and bw_in = Array.make nt 0
    and bw_out = Array.make nt 0 in
    Array.iteri
      (fun a t ->
        match
          Appgraph.memory app a (Archgraph.tile arch t).Tile.proc_type
        with
        | Some m -> mem.(t) <- mem.(t) + m
        | None -> ())
      binding;
    let split_problem = ref (Ok ()) in
    Array.iteri
      (fun ci (cr : Appgraph.channel_req) ->
        let c = Sdfg.channel g ci in
        let ts = binding.(c.Sdfg.src) and td = binding.(c.Sdfg.dst) in
        if ts = td then
          mem.(ts) <- mem.(ts) + (cr.Appgraph.alpha_tile * cr.Appgraph.token_size)
        else begin
          mem.(ts) <- mem.(ts) + (cr.Appgraph.alpha_src * cr.Appgraph.token_size);
          mem.(td) <- mem.(td) + (cr.Appgraph.alpha_dst * cr.Appgraph.token_size);
          conns.(ts) <- conns.(ts) + 1;
          conns.(td) <- conns.(td) + 1;
          bw_out.(ts) <- bw_out.(ts) + cr.Appgraph.bandwidth;
          bw_in.(td) <- bw_in.(td) + cr.Appgraph.bandwidth;
          if cr.Appgraph.bandwidth <= 0 then
            split_problem :=
              err "channel %s split with no bandwidth" (Sdfg.channel_name g ci)
          else if Archgraph.connection_between arch ~src:ts ~dst:td = None then
            split_problem :=
              err "channel %s split across unconnected tiles"
                (Sdfg.channel_name g ci)
        end)
      app.Appgraph.creqs;
    match !split_problem with
    | Error _ as e -> e
    | Ok () ->
        let rec go t =
          if t >= nt then Ok ()
          else
            let tile = Archgraph.tile arch t in
            if mem.(t) > tile.Tile.mem then
              err "tile %s: memory %d > %d" tile.Tile.t_name mem.(t)
                tile.Tile.mem
            else if conns.(t) > tile.Tile.max_conns then
              err "tile %s: %d connections > %d" tile.Tile.t_name conns.(t)
                tile.Tile.max_conns
            else if bw_in.(t) > tile.Tile.in_bw then
              err "tile %s: incoming bandwidth %d > %d" tile.Tile.t_name
                bw_in.(t) tile.Tile.in_bw
            else if bw_out.(t) > tile.Tile.out_bw then
              err "tile %s: outgoing bandwidth %d > %d" tile.Tile.t_name
                bw_out.(t) tile.Tile.out_bw
            else go (t + 1)
        in
        go 0
  in
  let throughput () =
    if Rat.compare alloc.Strategy.throughput app.Appgraph.lambda >= 0 then
      Ok ()
    else
      err "allocation throughput %s misses the constraint %s"
        (Rat.to_string alloc.Strategy.throughput)
        (Rat.to_string app.Appgraph.lambda)
  in
  match actors 0 with
  | Error _ as e -> e
  | Ok () -> (
      match slices () with
      | Error _ as e -> e
      | Ok () -> (
          match resources () with
          | Error _ as e -> e
          | Ok () -> throughput ()))

(* --- application-level oracles -------------------------------------- *)

(* A canonical, seconds-free rendering of a flow result: two runs are
   considered identical iff these strings match. *)
let allocation_summary (a : Strategy.allocation) =
  Format.asprintf "thr %s checks %d binding [%s] slices [%s]"
    (Rat.to_string a.Strategy.throughput)
    a.Strategy.stats.Strategy.throughput_checks
    (String.concat ";"
       (Array.to_list (Array.map string_of_int a.Strategy.binding)))
    (String.concat ";"
       (Array.to_list (Array.map string_of_int a.Strategy.slices)))

let attempt_summary (at : Core.Flow.attempt) =
  let w = at.Core.Flow.weights in
  let ws =
    Printf.sprintf "(%g,%g,%g)" w.Core.Cost.c1 w.Core.Cost.c2 w.Core.Cost.c3
  in
  match at.Core.Flow.outcome with
  | Error f -> Format.asprintf "%s => %a" ws Strategy.pp_failure f
  | Ok a -> ws ^ " => " ^ allocation_summary a

let flow_summary (r : Core.Flow.result) =
  String.concat "\n" (List.map attempt_summary r.Core.Flow.attempts)

let with_jobs n f =
  let before = Par.jobs () in
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs before) f

let with_memo enabled f =
  let before = Analysis.Memo.enabled () in
  Analysis.Memo.set_enabled enabled;
  Fun.protect
    ~finally:(fun () -> Analysis.Memo.set_enabled before)
    (fun () ->
      Analysis.Memo.clear_all ();
      f ())

(* Flow results must be invariant under memoization and pool size; the
   paper's resource constraints must hold for every allocation produced. *)
let flow_invariance ~max_states app arch =
  let run () = Core.Flow.allocate_with_retry ~max_states app arch in
  let base = with_memo true run in
  let no_memo = with_memo false run in
  let parallel = with_jobs 2 (fun () -> with_memo true run) in
  let s = flow_summary base in
  if flow_summary no_memo <> s then
    Oracle.Fail "flow result changes when memoization is disabled"
  else if flow_summary parallel <> s then
    Oracle.Fail "flow result changes under --jobs 2"
  else
    match base.Core.Flow.allocation with
    | None -> Oracle.Pass
    | Some alloc -> (
        match validate arch alloc with
        | Error e -> Oracle.failf "flow allocation violates Section 7: %s" e
        | Ok () ->
            if Strategy.is_valid alloc arch then Oracle.Pass
            else
              Oracle.Fail
                "independent validator accepts but Strategy.is_valid rejects")

(* Old-vs-new constrained engine on a realistic configuration: bind the
   application with the paper's default weights, build the binding-aware
   graph under half-wheel slices, list-schedule it, and require the packed
   engine and the retained Marshal/Hashtbl reference to agree on every
   field of the constrained result — including the visited-state count and
   the reified negative outcomes. *)
let constrained_engine_agreement ~max_states app arch =
  match
    Core.Binding_step.bind ~weights:(Core.Cost.weights 0. 1. 2.) app arch
  with
  | Error _ -> Oracle.Skip "no feasible binding"
  | Ok binding -> (
      let slices = Core.Bind_aware.half_wheel_slices app arch binding in
      let ba = Core.Bind_aware.build ~app ~arch ~binding ~slices () in
      match Core.List_scheduler.schedules ~max_states ba with
      | exception Core.List_scheduler.Deadlocked ->
          Oracle.Skip "list scheduler deadlocks"
      | exception Core.List_scheduler.State_space_exceeded _ ->
          Oracle.Skip "list scheduler exceeds the state cap"
      | schedules -> (
          let run f =
            match f () with
            | (r : Core.Constrained.result) -> Ok r
            | exception Core.Constrained.Deadlocked -> Error "deadlock"
            | exception Core.Constrained.State_space_exceeded _ ->
                Error "state cap"
          in
          let engine =
            run (fun () -> Core.Constrained.analyze ~max_states ba ~schedules)
          in
          let reference =
            run (fun () ->
                Core.Constrained.analyze_reference ~max_states ba ~schedules)
          in
          match (engine, reference) with
          | Error a, Error b when a = b -> Oracle.Pass
          | Error a, Error b ->
              Oracle.failf "constrained engine aborts with %s, reference %s" a b
          | Error a, Ok _ ->
              Oracle.failf "constrained engine aborts (%s), reference runs" a
          | Ok _, Error b ->
              Oracle.failf "constrained reference aborts (%s), engine runs" b
          | Ok e, Ok r ->
              if
                Rat.equal e.Core.Constrained.throughput
                  r.Core.Constrained.throughput
                && e.Core.Constrained.period = r.Core.Constrained.period
                && e.Core.Constrained.transient = r.Core.Constrained.transient
                && e.Core.Constrained.states = r.Core.Constrained.states
              then Oracle.Pass
              else
                Oracle.failf
                  "constrained engine (thr %s period %d transient %d states \
                   %d) and reference (thr %s period %d transient %d states \
                   %d) diverge"
                  (Rat.to_string e.Core.Constrained.throughput)
                  e.Core.Constrained.period e.Core.Constrained.transient
                  e.Core.Constrained.states
                  (Rat.to_string r.Core.Constrained.throughput)
                  r.Core.Constrained.period r.Core.Constrained.transient
                  r.Core.Constrained.states))

let multi_app_summary (r : Core.Multi_app.report) =
  Format.asprintf "allocs [%s] rejected [%s] wheel %d mem %d conns %d bw %d/%d"
    (String.concat ";" (List.map allocation_summary r.Core.Multi_app.allocations))
    (String.concat ";"
       (List.map
          (fun (a : Appgraph.t) -> a.Appgraph.app_name)
          r.Core.Multi_app.rejected))
    r.Core.Multi_app.wheel_used r.Core.Multi_app.memory_used
    r.Core.Multi_app.connections_used r.Core.Multi_app.bw_in_used
    r.Core.Multi_app.bw_out_used

let multi_app_invariance ~max_states apps arch =
  let run () =
    Core.Multi_app.allocate_until_failure ~max_states
      ~policy:Core.Multi_app.Skip_failed apps arch
  in
  let base = with_memo true run in
  let no_memo = with_memo false run in
  let parallel = with_jobs 2 (fun () -> with_memo true run) in
  let s = multi_app_summary base in
  if multi_app_summary no_memo <> s then
    Oracle.Fail "multi-app report changes when memoization is disabled"
  else if multi_app_summary parallel <> s then
    Oracle.Fail "multi-app report changes under --jobs 2"
  else Oracle.Pass
