(** Metamorphic oracles: transformations with a known effect on
    throughput, after the invariances that Skelin & Geilen's parametric
    throughput analysis and the multi-mode scheduling literature lean on.

    - [meta.renaming]: actor/channel names do not influence throughput
      (and renamed graphs share a memo entry — the key contract).
    - [meta.permutation]: permuting actor indices permutes the throughput
      vector and nothing else; catches index-keyed state bugs.
    - [meta.time-scaling]: scaling all execution times by [k] scales every
      throughput by exactly [1/k] (rational arithmetic, no tolerance).
    - [meta.neutral-self-edge]: a (1, 1) self-loop carrying the actor's
      peak auto-concurrency in tokens — measured from the observed firing
      starts — changes nothing.

    Runs whose state space exceeds the cap are skipped; a transformation
    flipping the deadlock verdict is a failure. *)

val renaming : max_states:int -> rng:Gen.Rng.t -> Case.t -> Oracle.outcome
val permutation : max_states:int -> rng:Gen.Rng.t -> Case.t -> Oracle.outcome
val time_scaling : max_states:int -> rng:Gen.Rng.t -> Case.t -> Oracle.outcome

val neutral_self_edge :
  max_states:int -> rng:Gen.Rng.t -> Case.t -> Oracle.outcome

val oracles : Oracle.t list
