(** Greedy counterexample minimisation.

    Classic QuickCheck-style shrinking: replace the failing case by the
    first {!Gen.Shrink.candidates} entry that still fails, repeat until no
    candidate fails (a local minimum under the step catalogue) or the step
    budget runs out. Every step strictly decreases {!Gen.Shrink.size}, so
    the loop terminates regardless of the predicate. *)

type result = {
  case : Gen.Shrink.case;  (** the minimised case *)
  steps : int;  (** accepted shrink steps *)
  still_failing : bool;
      (** [false] only when the original case did not fail at all (nothing
          to shrink) *)
}

val minimize :
  ?max_steps:int ->
  fails:(Gen.Shrink.case -> bool) ->
  Gen.Shrink.case ->
  result
(** [max_steps] defaults to 500. The predicate must be deterministic; it
    is re-evaluated once per candidate. *)
