let default_dir = Filename.concat "test" "corpus"

let save ~dir (case : Case.t) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (case.Case.name ^ ".sdfg") in
  Sdf.Textio.write_file ~exec_times:case.Case.taus path case.Case.name
    case.Case.graph;
  path

let load_file path = Case.of_document (Sdf.Textio.parse_file path)

let load_dir dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sdfg")
    |> List.sort compare
    |> List.map (fun f -> load_file (Filename.concat dir f))

(* Replay a corpus case through the full throughput-oracle catalogue. The
   metamorphic choices are drawn from an RNG seeded by the case name, so a
   replay exercises the same permutation and scaling factor every run. *)
let replay ~max_states (case : Case.t) =
  let seed = Hashtbl.hash case.Case.name in
  List.map
    (fun (o : Oracle.t) ->
      let rng = Gen.Rng.create ~seed in
      (o.Oracle.name, o.Oracle.run ~max_states ~rng case))
    (Differential.oracles @ Metamorphic.oracles)

let failures results =
  List.filter_map
    (fun (name, outcome) ->
      match outcome with
      | Oracle.Fail msg -> Some (name, msg)
      | Oracle.Pass | Oracle.Skip _ -> None)
    results
