(** A named correctness oracle over throughput cases.

    Oracles never raise: analysis blow-ups and inputs outside an oracle's
    precondition come back as [Skip] (counted, so a fuzz run reports how
    much it actually exercised), and every genuine cross-check divergence
    as [Fail] with a human-readable explanation. The [rng] stream drives
    any randomised metamorphic choice (permutation, scaling factor) and is
    the only source of randomness, keeping whole fuzz runs replayable from
    one seed. *)

type outcome = Pass | Skip of string | Fail of string

type t = {
  name : string;
  run : max_states:int -> rng:Gen.Rng.t -> Case.t -> outcome;
}

val failf : ('a, Format.formatter, unit, outcome) format4 -> 'a
val pp_outcome : Format.formatter -> outcome -> unit
