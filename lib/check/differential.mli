(** Differential oracles: independent routes to the same throughput.

    The library computes throughput three ways — the self-timed state-space
    exploration (paper Section 8.2), the maximum cycle ratio of the HSDF
    expansion ([gamma a / MCR] per actor, the Section-1 baseline route),
    and memoized replays of either — and nothing forces them to agree
    except correctness. These oracles assert that they do:

    - [diff.engine-vs-reference]: the packed state-space engine against
      the pre-engine Marshal/Hashtbl exploration kept as
      [Selftimed.analyze_reference]; every result field and every
      negative outcome must match exactly.
    - [diff.selftimed-vs-mcr]: on any well-formed case, both routes report
      the same deadlock verdict, and on live cases every actor's
      self-timed throughput equals [gamma a * (1 / MCR)]. Cases whose
      state space exceeds the cap, or whose MCR gives no finite bound, are
      skipped.
    - [diff.memo-agreement]: a cold analysis, a warm (cache-hit) replay
      and a memo-disabled analysis return identical results, including
      reified [Deadlocked]/[State_space_exceeded] outcomes.
    - [budget.partial-soundness]: under a random finite state budget, a
      partial outcome's anytime upper bound dominates the true throughput
      of every actor, its deadlock verdicts ([provably_dead],
      [dead_ruled_out]) agree with reality, and a budgeted run that
      completes matches the unbudgeted reference.

    - [diff.scenario-vs-enumeration]: a small scenario FSM derived from
      the case ({!Gen.Scenariogen.derive}) is analysed twice — by
      {!Scenario.Product.analyze} (packed product space, Karp) and by a
      structurally independent naive route (Hashtbl-interned product
      automaton, every simple cycle enumerated) — and the worst-case
      rates, state counts and deadlock verdicts must agree exactly.
      Skipped when the product automaton or its cycle set outgrows the
      enumeration caps.

    The hidden mutant switch corrupts the MCR replay by an off-by-one in
    the initial tokens of the first HSDF channel; the fuzz driver's
    self-check flips it to prove the harness actually detects (and
    shrinks) such divergence. The scenario mutant does the same for the
    scenario route: it drops every mode-transition delay on the engine
    side only, so a positive delay on a critical product cycle becomes a
    detectable (and shrinkable) rate divergence. *)

val mutant : bool ref
(** Off by default; enabled by [sdf3_fuzz --inject-mutant] only. *)

val scenario_mutant : bool ref
(** Off by default; enabled by [sdf3_fuzz --inject-scenario-mutant] only. *)

val engine_vs_reference :
  max_states:int -> rng:Gen.Rng.t -> Case.t -> Oracle.outcome
(** [diff.engine-vs-reference]: the packed state-space engine
    ({!Analysis.Selftimed.analyze}) against the retained Marshal/Hashtbl
    reference ({!Analysis.Selftimed.analyze_reference}) — equal throughput
    vectors, period, iterations, transient and visited-state count, and
    agreeing deadlock/cap outcomes. Never skips. *)

val selftimed_vs_mcr :
  max_states:int -> rng:Gen.Rng.t -> Case.t -> Oracle.outcome

val memo_agreement :
  max_states:int -> rng:Gen.Rng.t -> Case.t -> Oracle.outcome
(** Leaves the global memo switch as it found it; clears the tables. *)

val budget_partial_soundness :
  max_states:int -> rng:Gen.Rng.t -> Case.t -> Oracle.outcome
(** [budget.partial-soundness]: draws a state budget in [\[1, 64\]] from
    [rng] and checks the anytime contract of
    {!Analysis.Selftimed.analyze_budgeted} against
    [Selftimed.analyze_reference]. *)

val scenario_vs_enumeration :
  max_states:int -> rng:Gen.Rng.t -> Case.t -> Oracle.outcome
(** [diff.scenario-vs-enumeration]: see above. Draws the scenario FSM
    from [rng]; honours {!scenario_mutant}. *)

val oracles : Oracle.t list
