(** Load-test harness for the allocation daemon: a seeded deterministic
    workload generator, invariant oracles checked online and at teardown,
    and a driver that forks the daemon, swarms it with thread clients and
    verdicts every oracle.

    The oracles (see DESIGN.md §11 for the precise statements):
    - {b no-loss}: exactly one response per request id — no lost, dropped,
      duplicated or unattributable responses, no connect failures, no
      ["draining"] before the harness initiated the drain.
    - {b overload-window}: every ["overloaded"] rejection is witnessed by
      a provably full admission window (computed from the harness's own
      outstanding/completion accounting, a sound over-approximation of
      the server's in-flight set).
    - {b journal}: after the drain, every daemon journal line is
      byte-identical to an in-process sequential re-run of the same case,
      with per-case counts bounded by [ok-flow-responses <= journal <=
      flow-requests-sent]; every ok [flow] response's [result] object
      matches the same reference.
    - {b latency}: under observed saturation with enough samples,
      interactive p99 < batch p50 (the reserved-slot admission working).
    - {b drain}: the daemon exits 0 on its own after [drain] and unlinks
      its socket. *)

module Workload : sig
  type req = {
    id : string;  (** ["c<client>-<k>"] — unique across the run *)
    tier : Server.Tier.t;
    verb : string;
    case : string option;  (** input file for [analyze]/[flow] *)
    line : string;  (** the wire line, without trailing newline *)
  }

  (** Tier weights; they need not sum to 1. *)
  type mix = { interactive : float; standard : float; batch : float }

  val default_mix : mix
  (** 0.3 / 0.3 / 0.4. *)

  val request :
    seed:int -> cases:string array -> mix:mix -> client:int -> k:int -> req
  (** Request [k] of client [client]: a pure function of [(seed, client,
      k)], so a run is reproducible from its seed. Interactive requests
      are pings or analyzes, standard are analyzes, batch mixes
      journaled [flow] allocations with 25-60 ms [sleep] ballast that
      holds admission slots like uncached allocations would. *)
end

module Oracle : sig
  type t

  type totals = {
    t_sent : int;
    t_ok : int;
    t_overloaded : int;
    t_draining : int;
    t_cancelled : int;
    t_errors : int;
    t_aborted : int;  (** unanswered after the harness initiated drain *)
    t_lost : int;  (** unanswered before drain — a violation *)
    t_duplicates : int;
    t_unknown : int;  (** unparsable or unattributable response lines *)
    t_connect_failures : int;
    t_spurious_draining : int;  (** ["draining"] before drain initiated *)
    t_overload_violations : int;
    t_result_mismatches : int;
    t_journal_lines : int;
    t_journal_mismatches : int;
    t_journal_missing : int;
  }

  val create :
    capacity:int ->
    reserved:int ->
    reference:(string, string) Hashtbl.t ->
    t
  (** [capacity]/[reserved] mirror the daemon's admission configuration
      (same clamping); [reference] maps each case to its expected journal
      line (see {!reference_lines}). *)

  val register_send : t -> Workload.req -> unit
  (** Record a request the instant before its bytes go out. *)

  val record_response : t -> string -> string option
  (** Account one response line; returns the echoed id when the line was
      attributed to an outstanding request (so the client can retire it).
      Classifies the status, checks the overload window witness, records
      the ["load.latency_s.<tier>"] histogram, and byte-compares [flow]
      results against the reference. *)

  val mark_unanswered : t -> string -> unit
  (** The client gave up on this id (connection closed): aborted if the
      drain was already initiated, lost — a violation — otherwise. *)

  val connect_failed : t -> unit
  val initiate_drain : t -> unit
  (** Must be called strictly {e before} the drain request is sent. *)

  val drain_initiated : t -> bool

  val check_journal : t -> string list -> unit
  (** Fold the daemon's journal into the per-case byte/count checks. Call
      once, after the daemon has exited. *)

  val totals : t -> totals

  val no_loss_pass : totals -> bool
  val overload_pass : totals -> bool
  val journal_pass : totals -> bool
end

val reference_lines : root:string -> string array -> (string, string) Hashtbl.t
(** Sequentially re-run every case's allocation in-process under an
    uncapped budget — the same computation [sdf3_batch] performs — and
    return case -> expected journal line. The daemon's batch-tier [flow]
    budget is also uncapped, so served results and journal lines must be
    byte-identical to these. *)

module Driver : sig
  type mode = Closed  (** [clients] loops with think time *)
            | Open  (** target aggregate RPS schedule *)

  type config = {
    serve_bin : string;  (** the [sdf3_serve] executable to fork *)
    root : string option;  (** case corpus; [None] = generate one *)
    socket : string option;  (** [None] = private socket in a temp dir *)
    journal : string option;
    daemon_log : string option;
    report : string option;  (** write a JSON latency/verdict report *)
    clients : int;
    requests : int;  (** per client *)
    seed : int;
    mode : mode;
    rps : float;  (** open mode: target aggregate requests/second *)
    think_ms : float;  (** closed mode: pause after each response *)
    pipeline : int;  (** max outstanding requests per connection *)
    drain_after_s : float option;  (** initiate drain mid-flight *)
    max_inflight : int;
    reserved_slots : int;
    workers : int;
    timeout_s : float;  (** hard wall-clock cap on the client phase *)
    latency_check : bool;
    tcp : int option;
    mix : Workload.mix;
    cases_count : int;  (** generated corpus size when [root] is [None] *)
  }

  val default_config : serve_bin:string -> config

  val run : config -> int
  (** Fork the daemon, run the workload, drain, check every oracle.
      Prints one greppable ["loadtest: oracle <name>: PASS|FAIL"] line
      per oracle and a final ["loadtest: PASS|FAIL"]; returns 0 iff all
      oracles passed. On failure the daemon's log is echoed. *)
end
