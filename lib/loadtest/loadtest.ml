(* Stress/soak driver for the allocation daemon, built as a correctness
   tool: the point is not a throughput number but a set of invariant
   oracles checked online (exactly-one response per request id, oversold
   windows, spurious rejections) and at teardown (journal byte-identity
   against an in-process sequential re-run, clean drain). The workload
   is seeded and deterministic — request k of client c under seed s is
   always the same request — so a failing run reproduces.

   The driver forks the daemon itself, drives it with one thread per
   simulated client (open-loop at a target RPS, or closed-loop with
   think time), initiates the drain mid-flight or at completion, and
   verdicts every oracle on stdout plus an optional JSON report. *)

module Json = Obs.Json
module Tier = Server.Tier

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let connect_retry ~addr ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let domain = Unix.domain_of_sockaddr addr in
  let rec attempt () =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Some fd
    | exception
        Unix.Unix_error
          ( ( Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN
            | Unix.ECONNRESET ),
            _,
            _ ) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () > deadline then None
        else begin
          Unix.sleepf 0.02;
          attempt ()
        end
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  attempt ()

module Workload = struct
  type req = {
    id : string;
    tier : Tier.t;
    verb : string;
    case : string option;
    line : string;
  }

  (* interactive / standard / batch weights. *)
  type mix = { interactive : float; standard : float; batch : float }

  let default_mix = { interactive = 0.3; standard = 0.3; batch = 0.4 }

  let tier_of_draw mix u =
    let total = mix.interactive +. mix.standard +. mix.batch in
    let u = u *. total in
    if u < mix.interactive then Tier.Interactive
    else if u < mix.interactive +. mix.standard then Tier.Standard
    else Tier.Batch

  (* Request [k] of client [client] under [seed]: a pure function, so
     the harness and a failure reproduction agree on every byte. The
     interactive stream mixes pings (pure wire latency) with budgeted
     analyzes; standard is analyzes; batch mixes journaled flow
     allocations (40%) with 25-60 ms sleep ballast (60%) that holds
     admission slots the way real uncached allocations would, keeping
     the window saturated and the batch latency median solidly above
     warm-cache interactive latencies. *)
  let request ~seed ~cases ~mix ~client ~k =
    let st = Random.State.make [| seed; client; k |] in
    let tier = tier_of_draw mix (Random.State.float st 1.0) in
    let id = Printf.sprintf "c%d-%d" client k in
    let case () = cases.(Random.State.int st (Array.length cases)) in
    match tier with
    | Tier.Interactive ->
        if Random.State.bool st then
          {
            id;
            tier;
            verb = "ping";
            case = None;
            line =
              Printf.sprintf {|{"id":"%s","verb":"ping","tier":"interactive"}|}
                id;
          }
        else
          let c = case () in
          {
            id;
            tier;
            verb = "analyze";
            case = Some c;
            line =
              Printf.sprintf
                {|{"id":"%s","verb":"analyze","file":"%s","tier":"interactive"}|}
                id c;
          }
    | Tier.Standard ->
        let c = case () in
        {
          id;
          tier;
          verb = "analyze";
          case = Some c;
          line =
            Printf.sprintf
              {|{"id":"%s","verb":"analyze","file":"%s","tier":"standard"}|}
              id c;
        }
    | Tier.Batch ->
        if Random.State.float st 1.0 < 0.4 then
          let c = case () in
          {
            id;
            tier;
            verb = "flow";
            case = Some c;
            line =
              Printf.sprintf
                {|{"id":"%s","verb":"flow","file":"%s","platform":"mesh3x3","tier":"batch"}|}
                id c;
          }
        else
          let ms = 25 + Random.State.int st 36 in
          {
            id;
            tier;
            verb = "sleep";
            case = None;
            line =
              Printf.sprintf
                {|{"id":"%s","verb":"sleep","ms":%d,"tier":"batch"}|} id ms;
          }
end

module Oracle = struct
  type slot = {
    req : Workload.req;
    mutable comp_at_send : int;
    mutable sent_at : float;
    mutable answered : bool;
  }

  type t = {
    mutex : Mutex.t;
    capacity : int;
    reserved : int;
    reference : (string, string) Hashtbl.t;
    by_id : (string, slot) Hashtbl.t;
    sent_flow : (string, int) Hashtbl.t;
    ok_flow : (string, int) Hashtbl.t;
    h_latency : (Tier.t * Obs.Histogram.t) list;
    mutable outstanding : int;
    mutable completions : int;
    mutable drain_initiated : bool;
    mutable sent : int;
    mutable ok : int;
    mutable overloaded : int;
    mutable draining : int;
    mutable cancelled : int;
    mutable errors : int;
    mutable aborted : int;
    mutable lost : int;
    mutable duplicates : int;
    mutable unknown : int;
    mutable connect_failures : int;
    mutable spurious_draining : int;
    mutable overload_violations : int;
    mutable result_mismatches : int;
    mutable journal_lines : int;
    mutable journal_mismatches : int;
    mutable journal_missing : int;
  }

  type totals = {
    t_sent : int;
    t_ok : int;
    t_overloaded : int;
    t_draining : int;
    t_cancelled : int;
    t_errors : int;
    t_aborted : int;
    t_lost : int;
    t_duplicates : int;
    t_unknown : int;
    t_connect_failures : int;
    t_spurious_draining : int;
    t_overload_violations : int;
    t_result_mismatches : int;
    t_journal_lines : int;
    t_journal_mismatches : int;
    t_journal_missing : int;
  }

  let create ~capacity ~reserved ~reference =
    let capacity = max 1 capacity in
    let reserved = min (max 0 reserved) (capacity - 1) in
    {
      mutex = Mutex.create ();
      capacity;
      reserved;
      reference;
      by_id = Hashtbl.create 1024;
      sent_flow = Hashtbl.create 64;
      ok_flow = Hashtbl.create 64;
      h_latency =
        List.map
          (fun tier ->
            (tier, Obs.Histogram.make ("load.latency_s." ^ Tier.label tier)))
          Tier.all;
      outstanding = 0;
      completions = 0;
      drain_initiated = false;
      sent = 0;
      ok = 0;
      overloaded = 0;
      draining = 0;
      cancelled = 0;
      errors = 0;
      aborted = 0;
      lost = 0;
      duplicates = 0;
      unknown = 0;
      connect_failures = 0;
      spurious_draining = 0;
      overload_violations = 0;
      result_mismatches = 0;
      journal_lines = 0;
      journal_mismatches = 0;
      journal_missing = 0;
    }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let bump tbl key =
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

  let register_send t (req : Workload.req) =
    locked t @@ fun () ->
    t.sent <- t.sent + 1;
    t.outstanding <- t.outstanding + 1;
    (match (req.Workload.verb, req.Workload.case) with
    | "flow", Some c -> bump t.sent_flow c
    | _ -> ());
    Hashtbl.replace t.by_id req.Workload.id
      {
        req;
        comp_at_send = t.completions;
        sent_at = Unix.gettimeofday ();
        answered = false;
      }

  let connect_failed t =
    locked t @@ fun () -> t.connect_failures <- t.connect_failures + 1

  let initiate_drain t = locked t @@ fun () -> t.drain_initiated <- true
  let drain_initiated t = locked t @@ fun () -> t.drain_initiated

  (* Canonical re-encoding of the response's result object; the daemon
     and the reference both emit via [Obs.Json.to_compact_string], so
     byte comparison is exact. *)
  let result_string j =
    Option.map Json.to_compact_string (Json.member "result" j)

  let record_response t line =
    let at = Unix.gettimeofday () in
    locked t @@ fun () ->
    match Json.parse line with
    | Error _ ->
        t.unknown <- t.unknown + 1;
        None
    | Ok j -> (
        let id =
          match Json.member "id" j with
          | Some (Json.String id) -> Some id
          | _ -> None
        in
        let status =
          match Json.member "status" j with
          | Some (Json.String s) -> s
          | _ -> "?"
        in
        match Option.bind id (Hashtbl.find_opt t.by_id) with
        | None ->
            t.unknown <- t.unknown + 1;
            None
        | Some slot when slot.answered ->
            t.duplicates <- t.duplicates + 1;
            id
        | Some slot ->
            slot.answered <- true;
            let others = t.outstanding - 1 in
            let delta = t.completions - slot.comp_at_send in
            t.outstanding <- t.outstanding - 1;
            t.completions <- t.completions + 1;
            (match status with
            | "ok" ->
                t.ok <- t.ok + 1;
                Obs.Histogram.record
                  (List.assq slot.req.Workload.tier t.h_latency)
                  (at -. slot.sent_at);
                if slot.req.Workload.verb = "flow" then begin
                  (match slot.req.Workload.case with
                  | Some c -> bump t.ok_flow c
                  | None -> ());
                  match
                    ( result_string j,
                      Option.bind slot.req.Workload.case
                        (Hashtbl.find_opt t.reference) )
                  with
                  | Some got, Some want when got = want -> ()
                  | _ -> t.result_mismatches <- t.result_mismatches + 1
                end
            | "overloaded" ->
                t.overloaded <- t.overloaded + 1;
                (* Sound fullness witness: the server's in-flight set at
                   the rejection instant is covered by our still-
                   outstanding requests (minus this one) plus responses
                   that completed during this request's lifetime. If even
                   that over-approximation is below the tier's admission
                   threshold, the window provably had room — a
                   violation. Once the drain is initiated the witness is
                   void (aborted connections retire requests without a
                   completion), so the check covers pre-drain rejections
                   only. *)
                let threshold =
                  if slot.req.Workload.tier = Tier.Interactive then t.capacity
                  else t.capacity - t.reserved
                in
                if (not t.drain_initiated) && others + delta < threshold then
                  t.overload_violations <- t.overload_violations + 1
            | "draining" ->
                t.draining <- t.draining + 1;
                if not t.drain_initiated then
                  t.spurious_draining <- t.spurious_draining + 1
            | "cancelled" -> t.cancelled <- t.cancelled + 1
            | _ -> t.errors <- t.errors + 1);
            id)

  (* A request the client never got an answer for: tolerable only once
     the harness itself initiated the drain (the daemon stops reading
     buffered input when it shuts down); before that it is a lost
     response — the hard no-loss violation. *)
  let mark_unanswered t id =
    locked t @@ fun () ->
    match Hashtbl.find_opt t.by_id id with
    | Some slot when not slot.answered ->
        slot.answered <- true;
        t.outstanding <- t.outstanding - 1;
        if t.drain_initiated then t.aborted <- t.aborted + 1
        else t.lost <- t.lost + 1
    | _ -> ()

  let check_journal t lines =
    locked t @@ fun () ->
    let seen = Hashtbl.create 64 in
    List.iter
      (fun line ->
        t.journal_lines <- t.journal_lines + 1;
        let case =
          match Json.parse line with
          | Ok j -> (
              match Json.member "case" j with
              | Some (Json.String c) -> Some c
              | _ -> None)
          | Error _ -> None
        in
        match Option.bind case (Hashtbl.find_opt t.reference) with
        | Some want when want = line -> bump seen (Option.get case)
        | _ -> t.journal_mismatches <- t.journal_mismatches + 1)
      lines;
    (* Prefix-completeness: every ok flow response has its journal line;
       the journal never exceeds what was sent. *)
    Hashtbl.iter
      (fun case n_ok ->
        let logged = Option.value ~default:0 (Hashtbl.find_opt seen case) in
        if logged < n_ok then
          t.journal_missing <- t.journal_missing + (n_ok - logged))
      t.ok_flow;
    Hashtbl.iter
      (fun case logged ->
        let sent = Option.value ~default:0 (Hashtbl.find_opt t.sent_flow case) in
        if logged > sent then
          t.journal_mismatches <- t.journal_mismatches + (logged - sent))
      seen

  let totals t =
    locked t @@ fun () ->
    {
      t_sent = t.sent;
      t_ok = t.ok;
      t_overloaded = t.overloaded;
      t_draining = t.draining;
      t_cancelled = t.cancelled;
      t_errors = t.errors;
      t_aborted = t.aborted;
      t_lost = t.lost;
      t_duplicates = t.duplicates;
      t_unknown = t.unknown;
      t_connect_failures = t.connect_failures;
      t_spurious_draining = t.spurious_draining;
      t_overload_violations = t.overload_violations;
      t_result_mismatches = t.result_mismatches;
      t_journal_lines = t.journal_lines;
      t_journal_mismatches = t.journal_mismatches;
      t_journal_missing = t.journal_missing;
    }

  let no_loss_pass tt =
    tt.t_lost = 0 && tt.t_duplicates = 0 && tt.t_unknown = 0
    && tt.t_connect_failures = 0 && tt.t_errors = 0
    && tt.t_spurious_draining = 0

  let overload_pass tt = tt.t_overload_violations = 0

  let journal_pass tt =
    tt.t_journal_mismatches = 0 && tt.t_journal_missing = 0
    && tt.t_result_mismatches = 0
end

(* The sequential oracle: re-run every case's allocation in-process with
   an uncapped budget — the same computation [sdf3_batch] performs — and
   keep the journal line it would write. Batch-tier daemon work runs
   under the same uncapped budget, so every served flow result and every
   daemon journal line must be byte-identical to this reference. *)
let reference_lines ~root cases =
  let arch = Gen.Benchsets.architecture 0 in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun case ->
      let app = Appmodel.Sdf3_xml.read_app_file (Filename.concat root case) in
      let budget = Budget.make () in
      let r = Core.Flow.allocate_with_retry ~budget app arch in
      Hashtbl.replace tbl case
        (Server.Journal.to_line (Server.Journal.of_flow_result ~case r)))
    cases;
  tbl

module Driver = struct
  type mode = Closed | Open

  type config = {
    serve_bin : string;
    root : string option;
    socket : string option;
    journal : string option;
    daemon_log : string option;
    report : string option;
    clients : int;
    requests : int;
    seed : int;
    mode : mode;
    rps : float;
    think_ms : float;
    pipeline : int;
    drain_after_s : float option;
    max_inflight : int;
    reserved_slots : int;
    workers : int;
    timeout_s : float;
    latency_check : bool;
    tcp : int option;
    mix : Workload.mix;
    cases_count : int;
  }

  let default_config ~serve_bin =
    {
      serve_bin;
      root = None;
      socket = None;
      journal = None;
      daemon_log = None;
      report = None;
      clients = 50;
      requests = 10;
      seed = 1;
      mode = Closed;
      rps = 200.;
      think_ms = 5.;
      pipeline = 4;
      drain_after_s = None;
      max_inflight = 8;
      reserved_slots = 1;
      workers = 0;
      timeout_s = 120.;
      latency_check = true;
      tcp = None;
      mix = Workload.default_mix;
      cases_count = 6;
    }

  type t = {
    cfg : config;
    oracle : Oracle.t;
    addr : Unix.sockaddr;
    cases : string array;
    start : float;
  }

  let temp_dir () =
    let path = Filename.temp_file "sdf3-loadtest" "" in
    Sys.remove path;
    Unix.mkdir path 0o755;
    path

  let ensure_corpus cfg workdir =
    match cfg.root with
    | Some root ->
        let cases =
          Sys.readdir root |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".xml")
          |> List.sort compare |> Array.of_list
        in
        if Array.length cases = 0 then
          failwith (Printf.sprintf "no .xml cases under %s" root);
        (root, cases)
    | None ->
        let root = Filename.concat workdir "cases" in
        Unix.mkdir root 0o755;
        let apps =
          Gen.Benchsets.sequence ~set:1 ~seq:0 ~count:cfg.cases_count
        in
        let cases =
          List.map
            (fun app ->
              let name = app.Appmodel.Appgraph.app_name ^ ".xml" in
              Appmodel.Sdf3_xml.write_app_file (Filename.concat root name) app;
              name)
            apps
        in
        (root, Array.of_list (List.sort compare cases))

  let fork_daemon cfg ~socket ~root ~journal ~log ~metrics =
    let fd = Unix.openfile log [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
    let argv =
      [
        cfg.serve_bin;
        "--socket";
        socket;
        "--root";
        root;
        "--journal";
        journal;
        "--max-inflight";
        string_of_int cfg.max_inflight;
        "--reserved-slots";
        string_of_int cfg.reserved_slots;
        "--workers";
        string_of_int cfg.workers;
        (* Telemetry is opt-in; the stats verb serves zeros without it. *)
        "--metrics";
        metrics;
      ]
      @
      match cfg.tcp with
      | Some p -> [ "--tcp"; string_of_int p ]
      | None -> []
    in
    let pid =
      Unix.create_process cfg.serve_bin (Array.of_list argv) Unix.stdin fd fd
    in
    Unix.close fd;
    pid

  (* One blocking request/response exchange on the control connection. *)
  let control_exchange fd buf line =
    write_all fd (line ^ "\n");
    let chunk = Bytes.create 4096 in
    let rec go () =
      let s = Buffer.contents buf in
      match String.index_opt s '\n' with
      | Some i ->
          Buffer.clear buf;
          Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
          Some (String.sub s 0 i)
      | None -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> None
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
    in
    go ()

  let run_client d c =
    let cfg = d.cfg in
    let reqs =
      Array.init cfg.requests (fun k ->
          Workload.request ~seed:cfg.seed ~cases:d.cases ~mix:cfg.mix ~client:c
            ~k)
    in
    match connect_retry ~addr:d.addr ~timeout_s:cfg.timeout_s with
    | None -> Oracle.connect_failed d.oracle
    | Some fd ->
        let buf = Buffer.create 1024 in
        let chunk = Bytes.create 8192 in
        let pending = Hashtbl.create 16 in
        let sent = ref 0 in
        let eof = ref false in
        (* Stagger client start so a thousand clients do not send their
           first byte in the same microsecond. *)
        let think_until = ref (d.start +. (float_of_int c *. 0.002)) in
        let interval =
          if cfg.mode = Open then float_of_int cfg.clients /. cfg.rps else 0.
        in
        let open_due k =
          d.start
          +. (float_of_int c /. cfg.rps)
          +. (float_of_int k *. interval)
        in
        let hard_deadline = d.start +. cfg.timeout_s in
        let drain_lines on_line =
          let rec go () =
            let s = Buffer.contents buf in
            match String.index_opt s '\n' with
            | Some i ->
                let line = String.sub s 0 i in
                Buffer.clear buf;
                Buffer.add_string buf
                  (String.sub s (i + 1) (String.length s - i - 1));
                on_line line;
                go ()
            | None -> ()
          in
          go ()
        in
        (try
           while
             (not !eof)
             && (Hashtbl.length pending > 0
                || (!sent < cfg.requests
                   && not (Oracle.drain_initiated d.oracle)))
             && Unix.gettimeofday () < hard_deadline
           do
             let now = Unix.gettimeofday () in
             let due =
               match cfg.mode with
               | Open -> open_due !sent
               | Closed -> !think_until
             in
             let can_send =
               !sent < cfg.requests
               && (not (Oracle.drain_initiated d.oracle))
               && Hashtbl.length pending < cfg.pipeline
               && now >= due
             in
             if can_send then begin
               let req = reqs.(!sent) in
               incr sent;
               Oracle.register_send d.oracle req;
               Hashtbl.replace pending req.Workload.id ();
               try write_all fd (req.Workload.line ^ "\n")
               with Unix.Unix_error _ -> eof := true
             end
             else begin
               let wait =
                 if !sent < cfg.requests && Hashtbl.length pending < cfg.pipeline
                 then Float.max 0.001 (Float.min 0.05 (due -. now))
                 else 0.05
               in
               match Unix.select [ fd ] [] [] wait with
               | [], _, _ -> ()
               | _ -> (
                   match Unix.read fd chunk 0 (Bytes.length chunk) with
                   | 0 -> eof := true
                   | n ->
                       Buffer.add_subbytes buf chunk 0 n;
                       drain_lines (fun line ->
                           match Oracle.record_response d.oracle line with
                           | Some id ->
                               Hashtbl.remove pending id;
                               if cfg.mode = Closed then
                                 think_until :=
                                   Unix.gettimeofday ()
                                   +. (cfg.think_ms /. 1000.)
                           | None -> ())
                   | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
             end
           done
         with _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Hashtbl.iter (fun id () -> Oracle.mark_unanswered d.oracle id) pending

  let read_lines path =
    if not (Sys.file_exists path) then []
    else begin
      let ic = open_in path in
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      go []
    end

  let histo_json (s : Obs.Histogram.snapshot) =
    Json.Assoc
      [
        ("count", Json.Int s.Obs.Histogram.count);
        ("p50", Json.Float s.Obs.Histogram.p50);
        ("p90", Json.Float s.Obs.Histogram.p90);
        ("p99", Json.Float s.Obs.Histogram.p99);
        ("min", Json.Float s.Obs.Histogram.min);
        ("max", Json.Float s.Obs.Histogram.max);
      ]

  let write_report path ~(tt : Oracle.totals) ~server_stats ~verdicts =
    let latencies =
      Obs.Histogram.all ()
      |> List.filter (fun (k, _) -> String.starts_with ~prefix:"load." k)
      |> List.map (fun (k, s) -> (k, histo_json s))
    in
    let doc =
      Json.Assoc
        [
          ( "totals",
            Json.Assoc
              [
                ("sent", Json.Int tt.Oracle.t_sent);
                ("ok", Json.Int tt.Oracle.t_ok);
                ("overloaded", Json.Int tt.Oracle.t_overloaded);
                ("draining", Json.Int tt.Oracle.t_draining);
                ("cancelled", Json.Int tt.Oracle.t_cancelled);
                ("errors", Json.Int tt.Oracle.t_errors);
                ("aborted", Json.Int tt.Oracle.t_aborted);
                ("lost", Json.Int tt.Oracle.t_lost);
                ("duplicates", Json.Int tt.Oracle.t_duplicates);
                ("unknown", Json.Int tt.Oracle.t_unknown);
                ("connect_failures", Json.Int tt.Oracle.t_connect_failures);
                ("journal_lines", Json.Int tt.Oracle.t_journal_lines);
              ] );
          ("latency_s", Json.Assoc latencies);
          ( "oracles",
            Json.Assoc
              (List.map (fun (k, v) -> (k, Json.Bool v)) verdicts) );
          ( "server_stats",
            Option.value ~default:Json.Null server_stats );
        ]
    in
    let oc = open_out path in
    output_string oc (Json.to_string doc);
    close_out oc

  let run cfg =
    Obs.set_enabled true;
    let workdir = temp_dir () in
    let root, cases = ensure_corpus cfg workdir in
    let socket =
      Option.value cfg.socket ~default:(Filename.concat workdir "load.sock")
    in
    let journal =
      Option.value cfg.journal
        ~default:(Filename.concat workdir "journal.jsonl")
    in
    let daemon_log =
      Option.value cfg.daemon_log
        ~default:(Filename.concat workdir "daemon.log")
    in
    Printf.printf "loadtest: %d client(s) x %d request(s), seed %d, %s mode\n%!"
      cfg.clients cfg.requests cfg.seed
      (match cfg.mode with Closed -> "closed" | Open -> "open");
    let reference = reference_lines ~root cases in
    let oracle =
      Oracle.create ~capacity:cfg.max_inflight ~reserved:cfg.reserved_slots
        ~reference
    in
    let pid =
      fork_daemon cfg ~socket ~root ~journal ~log:daemon_log
        ~metrics:(Filename.concat workdir "daemon-metrics.json")
    in
    let addr =
      match cfg.tcp with
      | Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
      | None -> Unix.ADDR_UNIX socket
    in
    let fail_boot msg =
      Printf.printf "loadtest: %s\n" msg;
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      List.iter print_endline (read_lines daemon_log);
      1
    in
    (* Boot probe: short connect attempts interleaved with a liveness
       check, so a daemon that dies on startup (bad flag, bound socket)
       fails the run immediately instead of after the full timeout. *)
    let boot_connect () =
      let deadline = Unix.gettimeofday () +. Float.min cfg.timeout_s 30. in
      let rec go () =
        match connect_retry ~addr ~timeout_s:0.2 with
        | Some fd -> Some fd
        | None ->
            if fst (Unix.waitpid [ Unix.WNOHANG ] pid) <> 0 then None
            else if Unix.gettimeofday () > deadline then None
            else go ()
      in
      go ()
    in
    match boot_connect () with
    | None -> fail_boot "daemon did not come up"
    | Some control ->
        let cbuf = Buffer.create 1024 in
        (match control_exchange control cbuf {|{"id":"boot","verb":"ping"}|} with
        | Some _ -> ()
        | None -> ());
        (* Warm the daemon's memo caches before the clock starts: one
           analyze per case (batch tier, unjournaled), so the measured
           interactive latencies reflect the steady state, not the first
           cold computation of each graph. *)
        Array.iteri
          (fun i case ->
            ignore
              (control_exchange control cbuf
                 (Printf.sprintf
                    {|{"id":"warm%d","verb":"analyze","file":"%s","tier":"batch"}|}
                    i case)))
          cases;
        let d = { cfg; oracle; addr; cases; start = Unix.gettimeofday () } in
        let server_stats = ref None in
        (* Pull the daemon's telemetry registry over the wire (counters
           incl. server.preempt.*, per-tier histograms), then drain. The
           drain flag is raised strictly before the drain request is
           sent, so any connection the shutdown cuts is classified as
           aborted, never lost. *)
        let initiate_drain () =
          (match
             control_exchange control cbuf {|{"id":"stats","verb":"stats"}|}
           with
          | Some line -> (
              match Json.parse line with
              | Ok j -> server_stats := Json.member "result" j
              | Error _ -> ())
          | None -> ());
          Oracle.initiate_drain oracle;
          ignore
            (control_exchange control cbuf {|{"id":"drain","verb":"drain"}|})
        in
        let drain_timer =
          Option.map
            (fun s ->
              Thread.create
                (fun () ->
                  Unix.sleepf s;
                  initiate_drain ())
                ())
            cfg.drain_after_s
        in
        let threads =
          List.init cfg.clients (fun c -> Thread.create (run_client d) c)
        in
        List.iter Thread.join threads;
        (match drain_timer with
        | Some th -> Thread.join th
        | None -> initiate_drain ());
        (try Unix.close control with Unix.Unix_error _ -> ());
        (* The daemon must now drain and exit 0 on its own. *)
        let exit_status = ref None in
        let deadline = Unix.gettimeofday () +. 60. in
        while !exit_status = None && Unix.gettimeofday () < deadline do
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> Unix.sleepf 0.05
          | _, status -> exit_status := Some status
        done;
        let drain_ok =
          match !exit_status with
          | Some (Unix.WEXITED 0) -> true
          | Some _ -> false
          | None ->
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] pid);
              false
        in
        let socket_gone = not (Sys.file_exists socket) in
        Oracle.check_journal oracle (read_lines journal);
        let tt = Oracle.totals oracle in
        let snap name = Obs.Histogram.snapshot ("load.latency_s." ^ name) in
        let interactive = snap "interactive" in
        let batch = snap "batch" in
        (* The latency oracle reads the daemon's own per-tier service-time
           histograms (admission to response written), not the harness's
           end-to-end measurements: with hundreds of client threads on
           one runtime, harness-side scheduling delay would drown the
           signal the oracle is about — that admitted interactive work is
           served fast while batch work is slow. *)
        let server_histo name =
          let ( >>= ) o f = Option.bind o f in
          !server_stats
          >>= Json.member "histograms"
          >>= Json.member name
          >>= fun h ->
          let num k =
            match Json.member k h with
            | Some (Json.Float x) -> Some x
            | Some (Json.Int n) -> Some (float_of_int n)
            | _ -> None
          in
          match (Json.member "count" h, num "p50", num "p99") with
          | Some (Json.Int count), Some p50, Some p99 ->
              Some (count, p50, p99)
          | _ -> None
        in
        let srv_interactive = server_histo "server.request_s.interactive" in
        let srv_batch = server_histo "server.request_s.batch" in
        let saturated = tt.Oracle.t_overloaded > 0 in
        let latency_applicable =
          cfg.latency_check && saturated
          && (match srv_interactive with
             | Some (n, _, _) -> n >= 20
             | None -> false)
          && match srv_batch with Some (n, _, _) -> n >= 20 | None -> false
        in
        let latency_ok =
          (not latency_applicable)
          ||
          match (srv_interactive, srv_batch) with
          | Some (_, _, i_p99), Some (_, b_p50, _) -> i_p99 < b_p50
          | _ -> false
        in
        let no_loss = Oracle.no_loss_pass tt in
        let overload = Oracle.overload_pass tt in
        let journal_ok = Oracle.journal_pass tt in
        let drain_pass = drain_ok && socket_gone in
        Printf.printf
          "loadtest: sent=%d ok=%d overloaded=%d draining=%d aborted=%d\n"
          tt.Oracle.t_sent tt.Oracle.t_ok tt.Oracle.t_overloaded
          tt.Oracle.t_draining tt.Oracle.t_aborted;
        Printf.printf
          "loadtest: lost=%d duplicates=%d unknown=%d errors=%d \
           connect_failures=%d\n"
          tt.Oracle.t_lost tt.Oracle.t_duplicates tt.Oracle.t_unknown
          tt.Oracle.t_errors tt.Oracle.t_connect_failures;
        (match (interactive, batch) with
        | Some i, Some b ->
            Printf.printf
              "loadtest: client latency interactive p50=%.1fms p99=%.1fms \
               (n=%d) | batch p50=%.1fms p99=%.1fms (n=%d)\n"
              (1000. *. i.Obs.Histogram.p50)
              (1000. *. i.Obs.Histogram.p99)
              i.Obs.Histogram.count
              (1000. *. b.Obs.Histogram.p50)
              (1000. *. b.Obs.Histogram.p99)
              b.Obs.Histogram.count
        | _ -> ());
        (match (srv_interactive, srv_batch) with
        | Some (ni, ip50, ip99), Some (nb, bp50, bp99) ->
            Printf.printf
              "loadtest: server latency interactive p50=%.1fms p99=%.1fms \
               (n=%d) | batch p50=%.1fms p99=%.1fms (n=%d)\n"
              (1000. *. ip50) (1000. *. ip99) ni (1000. *. bp50)
              (1000. *. bp99) nb
        | _ -> ());
        (match !server_stats with
        | Some stats -> (
            match Json.member "counters" stats with
            | Some counters ->
                let c name =
                  match Json.member name counters with
                  | Some (Json.Int n) -> n
                  | _ -> 0
                in
                Printf.printf
                  "loadtest: server preempt reserved_admits=%d \
                   normal_blocked=%d\n"
                  (c "server.preempt.reserved_admits")
                  (c "server.preempt.normal_blocked")
            | None -> ())
        | None -> ());
        let verdict name ok =
          Printf.printf "loadtest: oracle %s: %s\n" name
            (if ok then "PASS" else "FAIL");
          (name, ok)
        in
        let verdicts =
          [
            verdict "no-loss" no_loss;
            verdict "overload-window" overload;
            verdict "journal" journal_ok;
            verdict
              (if latency_applicable then "latency" else "latency (not applicable)")
              latency_ok;
            verdict "drain" drain_pass;
          ]
        in
        Option.iter
          (fun path -> write_report path ~tt ~server_stats:!server_stats ~verdicts)
          cfg.report;
        let all = List.for_all snd verdicts in
        Printf.printf "loadtest: %s\n%!" (if all then "PASS" else "FAIL");
        if not all then List.iter print_endline (read_lines daemon_log);
        if all then 0 else 1
end
