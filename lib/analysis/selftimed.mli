module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Repetition = Sdf.Repetition

(** Self-timed state-space throughput analysis (paper Section 8.2, after
    Ghamarian et al., ACSD'06 [10]).

    In a self-timed execution an actor fires as soon as sufficient tokens are
    present on all its inputs; the firing consumes the input tokens at its
    start, lasts the actor's execution time and produces the output tokens at
    its end. The state of the execution is the distribution of tokens over
    the channels plus the remaining execution times of the active firings.
    Because the execution is deterministic (maximal-progress), the visited
    states eventually recur; the throughput of an actor is its number of
    firings in the periodic phase divided by the period length.

    Auto-concurrency is unbounded, as in [10]: an actor may have several
    simultaneous firings unless a self-loop channel limits it. Consequently
    every actor must have at least one input channel, otherwise it could
    start infinitely many firings in a single instant.

    Execution times may be 0; zero-time firings complete instantaneously. *)

type result = {
  throughput : Rat.t array;
      (** per actor: firings per time unit in the periodic phase *)
  period : int;  (** duration of the periodic phase (time units) *)
  iterations_per_period : int;
      (** how many graph iterations one period contains; the firing count of
          actor [a] per period is [iterations_per_period * gamma a] *)
  transient : int;  (** time at which the recurrent state is first visited *)
  states : int;  (** states stored during exploration *)
}

type partial = {
  reason : Budget.reason;  (** what ran out *)
  explored : int;  (** states stored before the stop *)
  time_reached : int;  (** how far into the transient the exploration got *)
  firings : int;  (** total firings started *)
  iteration_upper_bound : Rat.t;
      (** sound upper bound on the graph's iteration rate (iterations per
          time unit), from the normalized-token / cycle-duration bound over
          the simple cycles (see {!cycle_upper_bound}); {!Rat.infinity}
          when no cycle constrains it *)
  upper_bound : Rat.t array;
      (** per actor: [iteration_upper_bound * gamma a], i.e. a value
          guaranteed to dominate the exact [throughput.(a)] the completed
          analysis would return ({!Rat.infinity} when unconstrained) *)
  provably_dead : bool;
      (** some cycle holds no tokens: no firing on it can ever start, so
          the periodic throughput is exactly 0 (the completed analysis
          would deadlock or never recur) *)
  dead_ruled_out : bool;
      (** every actor already started [gamma a] firings — a complete
          iteration is executable, so {!Deadlocked} is impossible *)
}
(** What a budget-exhausted exploration still knows. The lower bound on
    throughput is always 0 (the periodic phase was never reached), but the
    upper bound is sound: it never lies below the true value, so a
    constraint check that fails against [upper_bound] fails for sure. *)

exception Deadlocked
(** The execution reached a state with no active firing and no enabled
    actor. *)

exception State_space_exceeded of int
(** More states than the allowed maximum were visited; for consistent
    strongly-connected graphs this indicates the cap is too small, for
    non-strongly-connected graphs it may indicate unbounded token
    accumulation. The payload is the cap. *)

val analyze :
  ?observer:(int -> int -> unit) -> ?max_states:int -> Sdfg.t -> int array ->
  result
(** [analyze g exec_times] explores the self-timed execution of [g].
    [max_states] defaults to [2_000_000]. When given, [observer time actor]
    is called at every firing start, in order — the execution is
    deterministic, so this reconstructs the Fig.-5-style transition chain
    (see {!Trace}).

    Observer-free analyses are memoized on {!cache_key} (see {!Memo}):
    repeat runs on a structurally identical graph with the same execution
    times return the stored result — including stored [Deadlocked] /
    [State_space_exceeded] outcomes, which are re-raised. Passing an
    observer bypasses the cache, since a cached result cannot replay the
    firing sequence.

    @raise Deadlocked see {!Deadlocked}.
    @raise State_space_exceeded see {!State_space_exceeded}.
    @raise Invalid_argument if some actor has no input channel, if
      [exec_times] has the wrong length or contains a negative entry, or if
      the graph is empty or inconsistent. *)

val analyze_reference :
  ?observer:(int -> int -> unit) -> ?max_states:int -> Sdfg.t -> int array ->
  result
(** The pre-engine exploration (sorted completion lists, [Marshal]
    snapshots into a string-keyed [Hashtbl]), kept as the independent half
    of the [diff.engine-vs-reference] oracle and as the baseline of the
    exploration microbenchmark. Never memoized, never recorded in
    telemetry; same exceptions and validation as {!analyze}. The two
    implementations must agree exactly — result fields, visited-state
    count, deadlock and cap outcomes, and observer call sequence. *)

val analyze_budgeted :
  ?observer:(int -> int -> unit) ->
  ?max_states:int ->
  budget:Budget.t ->
  Sdfg.t ->
  int array ->
  (result, partial) Stdlib.result
(** [analyze_budgeted ~budget g exec_times] is {!analyze} under a resource
    budget: [Ok result] when the exploration completes within it,
    [Error partial] when it runs out (see {!partial}). With
    [Budget.infinite] the outcome is always [Ok] and identical to
    {!analyze}. [Deadlocked] and [State_space_exceeded] still raise — they
    are analysis outcomes, not budget outcomes.

    Observer-free runs probe the memo cache first (a completed outcome
    answers without spending budget) and store only completed outcomes:
    a [Partial] never poisons the cache.

    @raise Deadlocked / State_space_exceeded / Invalid_argument as
    {!analyze}. *)

val analyze_parallel :
  ?domains:int -> ?max_states:int -> Sdfg.t -> int array -> result
(** [analyze_parallel ~domains g exec_times] is {!analyze} computed by the
    sharded frontier sweep: the coordinating domain runs the (single,
    deterministic) execution chain and [domains - 1] shard domains own
    hash-prefix slices of the seen-set, packing and membership-checking
    the states routed to them ({!Engine.Sharded_stateset}); recurrence is
    the smallest chain index any shard confirms as a revisit, which is
    interleaving-independent — the result is identical to {!analyze} for
    every [domains], and [domains <= 1] (the default) {e is} {!analyze}.
    Shares {!analyze}'s memo cache. Calls from inside a {!Par} pool task
    degrade to the sequential engine (counted in
    [selftimed.sweep.degraded]) rather than oversubscribing — see DESIGN
    §12.

    @raise Deadlocked / State_space_exceeded / Invalid_argument as
    {!analyze}. *)

val analyze_parallel_budgeted :
  ?domains:int ->
  ?max_states:int ->
  budget:Budget.t ->
  Sdfg.t ->
  int array ->
  (result, partial) Stdlib.result
(** {!analyze_budgeted} on the sharded sweep: the coordinator runs the
    exact sequential per-state budget check (arena sizes aggregated from
    the shards' published counters) and every shard polls the budget once
    per chunk, so deadline and cancel trips are observed by all domains
    and stop the sweep cooperatively. [Ok] results are identical to the
    sequential engine's; [Error partial] bounds are aggregated across
    shards and sound (a completed-looking hit is only reported as [Ok]
    when every shard has confirmed it checked all smaller owned states).
    Deterministic state-cap budgets trip at the same state count as the
    sequential engine. *)

val live_sweep_domains : unit -> int
(** The number of shard domains currently live across all sweeps — 0
    whenever no sweep is running. Exposed for leak regression tests
    (cancelled or failed sweeps must always join their domains). *)

val cycle_upper_bound :
  ?max_cycles:int -> durations:(int -> int) -> Sdfg.t -> Rat.t
(** [cycle_upper_bound ~durations g] is a sound upper bound on the
    iteration rate of any execution of [g] in which each firing of actor
    [a] occupies it for at least [durations a] time units: the minimum
    over the simple cycles of (normalized initial tokens on the cycle) /
    (sum of its actors' durations). {!Rat.zero} when some cycle holds no
    tokens (provably dead), {!Rat.infinity} when no cycle constrains the
    rate. Sound under truncated enumeration ([max_cycles], default
    100_000): dropping cycles only weakens the bound. *)

val cache_key : ?max_states:int -> Sdfg.t -> int array -> string
(** Canonical structural serialization of an analysis input: actor count,
    channels as [(src, dst, prod, cons, tokens)] tuples in index order,
    execution times and the state cap. Names are deliberately excluded —
    throughput does not depend on them, so structurally identical graphs
    from different applications share one cache entry. Two inputs have
    equal keys iff the analysis is guaranteed to produce equal results. *)

val throughput : ?max_states:int -> Sdfg.t -> int array -> int -> Rat.t
(** [throughput g exec_times a] is the throughput of actor [a]. *)
