module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Repetition = Sdf.Repetition

(** Self-timed state-space throughput analysis (paper Section 8.2, after
    Ghamarian et al., ACSD'06 [10]).

    In a self-timed execution an actor fires as soon as sufficient tokens are
    present on all its inputs; the firing consumes the input tokens at its
    start, lasts the actor's execution time and produces the output tokens at
    its end. The state of the execution is the distribution of tokens over
    the channels plus the remaining execution times of the active firings.
    Because the execution is deterministic (maximal-progress), the visited
    states eventually recur; the throughput of an actor is its number of
    firings in the periodic phase divided by the period length.

    Auto-concurrency is unbounded, as in [10]: an actor may have several
    simultaneous firings unless a self-loop channel limits it. Consequently
    every actor must have at least one input channel, otherwise it could
    start infinitely many firings in a single instant.

    Execution times may be 0; zero-time firings complete instantaneously. *)

type result = {
  throughput : Rat.t array;
      (** per actor: firings per time unit in the periodic phase *)
  period : int;  (** duration of the periodic phase (time units) *)
  iterations_per_period : int;
      (** how many graph iterations one period contains; the firing count of
          actor [a] per period is [iterations_per_period * gamma a] *)
  transient : int;  (** time at which the recurrent state is first visited *)
  states : int;  (** states stored during exploration *)
}

exception Deadlocked
(** The execution reached a state with no active firing and no enabled
    actor. *)

exception State_space_exceeded of int
(** More states than the allowed maximum were visited; for consistent
    strongly-connected graphs this indicates the cap is too small, for
    non-strongly-connected graphs it may indicate unbounded token
    accumulation. The payload is the cap. *)

val analyze :
  ?observer:(int -> int -> unit) -> ?max_states:int -> Sdfg.t -> int array ->
  result
(** [analyze g exec_times] explores the self-timed execution of [g].
    [max_states] defaults to [2_000_000]. When given, [observer time actor]
    is called at every firing start, in order — the execution is
    deterministic, so this reconstructs the Fig.-5-style transition chain
    (see {!Trace}).

    Observer-free analyses are memoized on {!cache_key} (see {!Memo}):
    repeat runs on a structurally identical graph with the same execution
    times return the stored result — including stored [Deadlocked] /
    [State_space_exceeded] outcomes, which are re-raised. Passing an
    observer bypasses the cache, since a cached result cannot replay the
    firing sequence.

    @raise Deadlocked see {!Deadlocked}.
    @raise State_space_exceeded see {!State_space_exceeded}.
    @raise Invalid_argument if some actor has no input channel, if
      [exec_times] has the wrong length or contains a negative entry, or if
      the graph is empty or inconsistent. *)

val analyze_reference :
  ?observer:(int -> int -> unit) -> ?max_states:int -> Sdfg.t -> int array ->
  result
(** The pre-engine exploration (sorted completion lists, [Marshal]
    snapshots into a string-keyed [Hashtbl]), kept as the independent half
    of the [diff.engine-vs-reference] oracle and as the baseline of the
    exploration microbenchmark. Never memoized, never recorded in
    telemetry; same exceptions and validation as {!analyze}. The two
    implementations must agree exactly — result fields, visited-state
    count, deadlock and cap outcomes, and observer call sequence. *)

val cache_key : ?max_states:int -> Sdfg.t -> int array -> string
(** Canonical structural serialization of an analysis input: actor count,
    channels as [(src, dst, prod, cons, tokens)] tuples in index order,
    execution times and the state cap. Names are deliberately excluded —
    throughput does not depend on them, so structurally identical graphs
    from different applications share one cache entry. Two inputs have
    equal keys iff the analysis is guaranteed to produce equal results. *)

val throughput : ?max_states:int -> Sdfg.t -> int array -> int -> Rat.t
(** [throughput g exec_times a] is the throughput of actor [a]. *)
