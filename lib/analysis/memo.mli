(** Memoization tables for throughput analyses.

    The allocation flow re-analyzes structurally identical binding-aware
    SDFGs over and over: every weight-ladder rung rebuilds the same graphs
    for the bindings it shares with earlier rungs, identical applications
    in a multi-application workload probe the same slice configurations,
    and a lambda sweep re-runs the whole strategy on one graph. A memo
    table keyed on a canonical structural serialization of the analysis
    input (see {!Selftimed.cache_key} and {!Constrained.cache_key}) makes
    every repeat a lookup.

    Tables are thread-safe (one mutex per table; the computation itself
    runs outside the lock, so concurrent misses on the same key may
    compute twice — harmless for pure analyses) and bounded: when a table
    reaches its entry cap it is emptied wholesale, which keeps the worst
    case simple and counts as an eviction.

    Effectiveness is observable through {!Obs} counters: the aggregate
    ["cache.hits"] / ["cache.misses"] / ["cache.evictions"], plus
    ["cache.<name>.hits"] and ["cache.<name>.misses"] per table. The
    counters are registered at table creation, so they appear (at 0) in
    every [--metrics] document. *)

type 'v t

val create : name:string -> ?max_entries:int -> unit -> 'v t
(** [create ~name ()] registers the table's hit/miss counters under
    ["cache.<name>.*"]. [max_entries] defaults to [65_536]. *)

val find_or_compute : 'v t -> key:string -> (unit -> 'v) -> 'v
(** [find_or_compute t ~key f] returns the cached value for [key] or runs
    [f] and stores its result. An exception from [f] propagates and caches
    nothing (callers cache negative outcomes by reifying them as values).
    When memoization is globally disabled, simply runs [f]. *)

val find : 'v t -> key:string -> 'v option
(** Lookup without computing — the budgeted analyses probe the cache first
    and fall back to a bounded exploration on a miss. Counts a hit or a
    miss; always [None] when memoization is globally disabled. *)

val add : 'v t -> key:string -> 'v -> unit
(** Store a value computed outside {!find_or_compute}. Budgeted analyses
    only ever [add] complete outcomes — a [Partial] result reflects the
    budget of one particular run, not the graph, and must never poison the
    cache. No-op when memoization is globally disabled. *)

val clear : 'v t -> unit

val clear_all : unit -> unit
(** Empty every table created so far (tests use this to re-establish a
    cold cache). *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Global kill-switch, on by default. Disabling does not clear tables;
    re-enabling sees the old entries. Benchmarks that must time the real
    analysis (bench micro-timers) disable memoization first. *)
