(** Memoization tables for throughput analyses.

    The allocation flow re-analyzes structurally identical binding-aware
    SDFGs over and over: every weight-ladder rung rebuilds the same graphs
    for the bindings it shares with earlier rungs, identical applications
    in a multi-application workload probe the same slice configurations,
    and a lambda sweep re-runs the whole strategy on one graph. A memo
    table keyed on a canonical structural serialization of the analysis
    input (see {!Selftimed.cache_key} and {!Constrained.cache_key}) makes
    every repeat a lookup.

    Tables are thread-safe (one mutex per table; the computation itself
    runs outside the lock, so concurrent misses on the same key may
    compute twice — harmless for pure analyses) and bounded with an
    LRU-ish policy sized for days of server uptime: every entry carries
    the logical time of its last hit, and an insert that would cross the
    cap drops a batch of the least-recently-used entries (an eighth of
    the capacity at a time, so a table sitting at its cap amortises the
    sweep over many misses). Hot keys — the graphs a service sees over
    and over — survive indefinitely; one-off graphs age out.

    Effectiveness is observable through {!Obs} counters: the aggregate
    ["cache.hits"] / ["cache.misses"] / ["cache.evictions"] (counting
    evicted {e entries}), plus ["cache.<name>.hits"],
    ["cache.<name>.misses"] and ["cache.<name>.evictions"] per table. The
    counters are registered at table creation, so they appear (at 0) in
    every [--metrics] document. *)

type 'v t

val create : name:string -> ?max_entries:int -> unit -> 'v t
(** [create ~name ()] registers the table's hit/miss/eviction counters
    under ["cache.<name>.*"]. [max_entries] defaults to [65_536] and is
    clamped to at least 1. *)

val set_capacity : 'v t -> int -> unit
(** Rebound the table to at most [n] entries (clamped to at least 1),
    evicting the least-recently-used surplus immediately. Long-running
    services size their shared tables with this. *)

val capacity : 'v t -> int

val length : 'v t -> int
(** Current entry count; always [<= capacity t] outside a concurrent
    insert. *)

val set_capacity_all : int -> unit
(** {!set_capacity} on every table created so far ([sdf3_serve
    --cache-capacity] applies one bound to the selftimed and constrained
    tables alike). *)

val find_or_compute : 'v t -> key:string -> (unit -> 'v) -> 'v
(** [find_or_compute t ~key f] returns the cached value for [key] or runs
    [f] and stores its result. An exception from [f] propagates and caches
    nothing (callers cache negative outcomes by reifying them as values).
    When memoization is globally disabled, simply runs [f]. *)

val find : 'v t -> key:string -> 'v option
(** Lookup without computing — the budgeted analyses probe the cache first
    and fall back to a bounded exploration on a miss. Counts a hit or a
    miss; always [None] when memoization is globally disabled. *)

val add : 'v t -> key:string -> 'v -> unit
(** Store a value computed outside {!find_or_compute}. Budgeted analyses
    only ever [add] complete outcomes — a [Partial] result reflects the
    budget of one particular run, not the graph, and must never poison the
    cache. No-op when memoization is globally disabled. *)

val clear : 'v t -> unit

val clear_all : unit -> unit
(** Empty every table created so far (tests use this to re-establish a
    cold cache). *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Global kill-switch, on by default. Disabling does not clear tables;
    re-enabling sees the old entries. Benchmarks that must time the real
    analysis (bench micro-timers) disable memoization first. *)
