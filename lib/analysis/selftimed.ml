module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Repetition = Sdf.Repetition

type result = {
  throughput : Rat.t array;
  period : int;
  iterations_per_period : int;
  transient : int;
  states : int;
}

exception Deadlocked
exception State_space_exceeded of int

(* Insert into an ascending sorted list. *)
let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: _ as l when x <= y -> x :: l
  | y :: rest -> y :: insert_sorted x rest

let validate g exec_times =
  let n = Sdfg.num_actors g in
  if n = 0 then invalid_arg "Selftimed.analyze: empty graph";
  if Array.length exec_times <> n then
    invalid_arg "Selftimed.analyze: exec_times length mismatch";
  Array.iter
    (fun t -> if t < 0 then invalid_arg "Selftimed.analyze: negative execution time")
    exec_times;
  for a = 0 to n - 1 do
    if Sdfg.in_channels g a = [] then
      invalid_arg
        (Printf.sprintf
           "Selftimed.analyze: actor %s has no input channel (unbounded \
            auto-concurrency)"
           (Sdfg.actor_name g a))
  done

let analyze_uncached ?observer ?(max_states = 2_000_000) g exec_times =
  validate g exec_times;
  let gamma = Repetition.vector_exn g in
  let n = Sdfg.num_actors g in
  let tokens = Array.map (fun c -> c.Sdfg.tokens) (Sdfg.channels g) in
  let active = Array.make n [] in
  let counts = Array.make n 0 in
  let time = ref 0 in
  let seen : (string, int * int array) Hashtbl.t = Hashtbl.create 4096 in
  let enabled a =
    List.for_all
      (fun ci -> tokens.(ci) >= (Sdfg.channel g ci).Sdfg.cons)
      (Sdfg.in_channels g a)
  in
  let consume a =
    List.iter
      (fun ci -> tokens.(ci) <- tokens.(ci) - (Sdfg.channel g ci).Sdfg.cons)
      (Sdfg.in_channels g a)
  in
  let produce a =
    List.iter
      (fun ci -> tokens.(ci) <- tokens.(ci) + (Sdfg.channel g ci).Sdfg.prod)
      (Sdfg.out_channels g a)
  in
  (* Start every enabled firing; zero-time firings complete on the spot and
     may enable more starts, hence the fixpoint. The guard protects against
     zero-time livelock (a token-producing cycle of zero-time actors). *)
  let start_fixpoint () =
    let instant_guard = ref 0 in
    let progress = ref true in
    while !progress do
      progress := false;
      for a = 0 to n - 1 do
        while enabled a do
          progress := true;
          incr instant_guard;
          if !instant_guard > 10_000_000 then
            invalid_arg "Selftimed.analyze: zero-time livelock";
          consume a;
          counts.(a) <- counts.(a) + 1;
          (match observer with Some f -> f !time a | None -> ());
          if exec_times.(a) = 0 then produce a
          else active.(a) <- insert_sorted exec_times.(a) active.(a)
        done
      done
    done
  in
  let snapshot () =
    Marshal.to_string (tokens, active) [ Marshal.No_sharing ]
  in
  (* Telemetry: recorded once per run (never inside the exploration loop),
     so disabled telemetry costs one branch per analysis. *)
  let record_metrics r =
    if Obs.enabled () then begin
      Obs.Counter.add "selftimed.runs" 1;
      Obs.Counter.add "selftimed.states" r.states;
      Obs.Counter.add "selftimed.transient" r.transient;
      Obs.Counter.add "selftimed.period" r.period;
      Obs.Counter.add "selftimed.firings" (Array.fold_left ( + ) 0 counts);
      let s = Hashtbl.stats seen in
      Obs.Gauge.set "selftimed.hash.load_factor"
        (float_of_int s.Hashtbl.num_bindings
        /. float_of_int (max 1 s.Hashtbl.num_buckets));
      Obs.Gauge.set_int "selftimed.hash.max_bucket" s.Hashtbl.max_bucket_length
    end;
    r
  in
  let rec explore () =
    start_fixpoint ();
    let key = snapshot () in
    match Hashtbl.find_opt seen key with
    | Some (t0, counts0) ->
        let period = !time - t0 in
        let iterations = (counts.(0) - counts0.(0)) / gamma.(0) in
        assert (counts.(0) - counts0.(0) = iterations * gamma.(0));
        let throughput =
          Array.init n (fun a -> Rat.make (iterations * gamma.(a)) period)
        in
        {
          throughput;
          period;
          iterations_per_period = iterations;
          transient = t0;
          states = Hashtbl.length seen;
        }
    | None ->
        if Hashtbl.length seen >= max_states then
          raise (State_space_exceeded max_states);
        Hashtbl.add seen key (!time, Array.copy counts);
        (* Advance to the earliest completion. *)
        let dt =
          Array.fold_left
            (fun acc l -> match l with [] -> acc | r :: _ -> min acc r)
            max_int active
        in
        if dt = max_int then raise Deadlocked;
        time := !time + dt;
        for a = 0 to n - 1 do
          let rec settle = function
            | r :: rest when r = dt ->
                produce a;
                settle rest
            | l -> List.map (fun r -> r - dt) l
          in
          active.(a) <- settle active.(a)
        done;
        explore ()
  in
  match explore () with
  | r -> record_metrics r
  | exception Deadlocked ->
      Obs.Counter.add "selftimed.deadlocks" 1;
      raise Deadlocked
  | exception State_space_exceeded n ->
      Obs.Counter.add "selftimed.cap_aborts" 1;
      raise (State_space_exceeded n)

(* The analysis depends only on the graph structure (channel endpoints,
   rates, initial tokens), the execution times and the state cap — never on
   actor or channel names. Leaving names out of the key makes structurally
   identical graphs share cache entries even when they come from different
   applications (e.g. copies of one application in a multi-app workload). *)
let cache_key ?(max_states = 2_000_000) g exec_times =
  let chans =
    Array.map
      (fun c -> (c.Sdfg.src, c.Sdfg.dst, c.Sdfg.prod, c.Sdfg.cons, c.Sdfg.tokens))
      (Sdfg.channels g)
  in
  Marshal.to_string
    (Sdfg.num_actors g, chans, exec_times, max_states)
    [ Marshal.No_sharing ]

(* Negative outcomes are part of the analysis result, so they are cached
   too, reified as values and replayed as exceptions on a hit. *)
type outcome = Res of result | Dead | Exceeded of int

let cache : outcome Memo.t = Memo.create ~name:"selftimed" ()

let analyze ?observer ?(max_states = 2_000_000) g exec_times =
  match observer with
  | Some _ ->
      (* An observer sees every firing of the transient and periodic
         phases; a cached result cannot replay them. *)
      analyze_uncached ?observer ~max_states g exec_times
  | None -> (
      (* Validation errors are caller bugs, not analysis outcomes: raise
         them before touching the cache. *)
      validate g exec_times;
      let key = cache_key ~max_states g exec_times in
      let outcome =
        Memo.find_or_compute cache ~key (fun () ->
            match analyze_uncached ~max_states g exec_times with
            | r -> Res r
            | exception Deadlocked -> Dead
            | exception State_space_exceeded n -> Exceeded n)
      in
      match outcome with
      | Res r -> r
      | Dead -> raise Deadlocked
      | Exceeded n -> raise (State_space_exceeded n))

let throughput ?max_states g exec_times a =
  (analyze ?max_states g exec_times).throughput.(a)
