module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Repetition = Sdf.Repetition
module Cycles = Sdf.Cycles

type result = {
  throughput : Rat.t array;
  period : int;
  iterations_per_period : int;
  transient : int;
  states : int;
}

type partial = {
  reason : Budget.reason;
  explored : int;
  time_reached : int;
  firings : int;
  iteration_upper_bound : Rat.t;
  upper_bound : Rat.t array;
  provably_dead : bool;
  dead_ruled_out : bool;
}

exception Deadlocked
exception State_space_exceeded of int

(* Anytime upper bound on the iteration rate, from the simple cycles of the
   graph alone — no exploration needed, so it is available no matter how
   early a budgeted run stops.

   For a simple cycle C, weight each channel c by 1/(prod(c)·gamma(src c)).
   Consistency (gamma(src)·prod = gamma(dst)·cons) makes the weighted token
   sum S over C invariant under every *completed* firing: a firing of cycle
   actor a removes cons/(prod_in·gamma(src_in)) = 1/gamma(a) at its start
   and returns prod_out/(prod_out·gamma(a)) = 1/gamma(a) at its end; actors
   off the cycle never touch C's channels (both endpoints of a cycle
   channel lie on C). So at any instant the firings in flight on C have
   borrowed at most S0, the initial weighted sum — each firing of a holds
   1/gamma(a) for at least duration d_a. At a sustained iteration rate of
   lambda, actor a starts lambda·gamma(a) firings per time unit, holding
   1/gamma(a) each for d_a: total borrowed mass lambda·Σ_{a∈C} d_a ≤ S0,
   hence lambda ≤ S0 / Σ d_a (Little's law). S0 = 0 means no firing on C
   can ever start: the iteration rate is provably 0. Σ d_a = 0 yields no
   constraint from C. The minimum over the enumerated cycles is sound even
   when enumeration truncates (fewer cycles can only weaken the bound). *)
let cycle_upper_bound ?max_cycles ~durations g =
  let gamma = Repetition.vector_exn g in
  let channels = Sdfg.channels g in
  let enum = Cycles.simple_cycles ?max_cycles g in
  List.fold_left
    (fun best cycle ->
      let tokens_norm =
        List.fold_left
          (fun acc ci ->
            let c = channels.(ci) in
            Rat.add acc
              (Rat.make c.Sdfg.tokens (c.Sdfg.prod * gamma.(c.Sdfg.src))))
          Rat.zero cycle
      in
      (* Each actor of a simple cycle is the source of exactly one of its
         channels, so summing over channel sources visits each actor once. *)
      let duration =
        List.fold_left
          (fun acc ci -> acc + durations channels.(ci).Sdfg.src)
          0 cycle
      in
      let bound =
        if Rat.equal tokens_norm Rat.zero then Rat.zero
        else if duration = 0 then Rat.infinity
        else Rat.div tokens_norm (Rat.of_int duration)
      in
      Rat.min best bound)
    Rat.infinity enum.Cycles.cycles

let validate g exec_times =
  let n = Sdfg.num_actors g in
  if n = 0 then invalid_arg "Selftimed.analyze: empty graph";
  if Array.length exec_times <> n then
    invalid_arg "Selftimed.analyze: exec_times length mismatch";
  Array.iter
    (fun t -> if t < 0 then invalid_arg "Selftimed.analyze: negative execution time")
    exec_times;
  for a = 0 to n - 1 do
    if Sdfg.in_channels g a = [] then
      invalid_arg
        (Printf.sprintf
           "Selftimed.analyze: actor %s has no input channel (unbounded \
            auto-concurrency)"
           (Sdfg.actor_name g a))
  done

(* The pre-engine exploration (sorted lists of remaining times, Marshal
   snapshots into a string-keyed Hashtbl), retained as the slow half of the
   differential oracle [diff.engine-vs-reference] and as the baseline of
   the exploration microbenchmark. Behaviour-defining: the packed engine
   below must agree with it on every input. *)
let analyze_reference ?observer ?(max_states = 2_000_000) g exec_times =
  validate g exec_times;
  let gamma = Repetition.vector_exn g in
  let n = Sdfg.num_actors g in
  let ops = Engine.Ops.of_graph g in
  let tokens = Array.map (fun c -> c.Sdfg.tokens) (Sdfg.channels g) in
  let active = Array.make n [] in
  let counts = Array.make n 0 in
  let time = ref 0 in
  let seen : (string, int * int array) Hashtbl.t = Hashtbl.create 4096 in
  (* Start every enabled firing; zero-time firings complete on the spot and
     may enable more starts, hence the fixpoint. The guard protects against
     zero-time livelock (a token-producing cycle of zero-time actors). *)
  let start_fixpoint () =
    let instant_guard = ref 0 in
    let progress = ref true in
    while !progress do
      progress := false;
      for a = 0 to n - 1 do
        while Engine.Ops.enabled ops tokens a do
          progress := true;
          incr instant_guard;
          if !instant_guard > 10_000_000 then
            invalid_arg "Selftimed.analyze: zero-time livelock";
          Engine.Ops.consume ops tokens a;
          counts.(a) <- counts.(a) + 1;
          (match observer with Some f -> f !time a | None -> ());
          if exec_times.(a) = 0 then Engine.Ops.produce ops tokens a
          else active.(a) <- Engine.Ops.insert_sorted exec_times.(a) active.(a)
        done
      done
    done
  in
  let snapshot () =
    Marshal.to_string (tokens, active) [ Marshal.No_sharing ]
  in
  let rec explore () =
    start_fixpoint ();
    let key = snapshot () in
    match Hashtbl.find_opt seen key with
    | Some (t0, counts0) ->
        let period = !time - t0 in
        let iterations = (counts.(0) - counts0.(0)) / gamma.(0) in
        assert (counts.(0) - counts0.(0) = iterations * gamma.(0));
        let throughput =
          Array.init n (fun a -> Rat.make (iterations * gamma.(a)) period)
        in
        {
          throughput;
          period;
          iterations_per_period = iterations;
          transient = t0;
          states = Hashtbl.length seen;
        }
    | None ->
        if Hashtbl.length seen >= max_states then
          raise (State_space_exceeded max_states);
        Hashtbl.add seen key (!time, Array.copy counts);
        (* Advance to the earliest completion. *)
        let dt =
          Array.fold_left
            (fun acc l -> match l with [] -> acc | r :: _ -> min acc r)
            max_int active
        in
        if dt = max_int then raise Deadlocked;
        time := !time + dt;
        for a = 0 to n - 1 do
          let rec settle = function
            | r :: rest when r = dt ->
                Engine.Ops.produce ops tokens a;
                settle rest
            | l -> List.map (fun r -> r - dt) l
          in
          active.(a) <- settle active.(a)
        done;
        explore ()
  in
  explore ()

(* ------------------------------------------------------------------ *)
(* The shared simulator core of the packed engines.

   Self-timed execution is deterministic (maximal progress), so the state
   space is a single chain: every explorer — sequential or sharded —
   drives the same simulator and differs only in how it checks states for
   recurrence. The simulator keeps the token vector, the per-actor FIFO
   completion rings (for state packing) and a completion-event min-heap
   (for time advance), plus a worklist of fire candidates so an instant's
   firing fixpoint touches only actors that received tokens instead of
   rescanning the whole graph.

   The worklist order differs from the reference engine's
   actor-index-order scan, which is sound for everything but observers:
   within one instant each channel has exactly one consumer, so distinct
   actors' firings consume from disjoint channels and only ever add
   tokens for each other — the fired multiset, the fixpoint token vector
   and the per-actor completion rings are order-independent (DESIGN §12).
   Observer runs must replay the reference firing order exactly, so they
   use the legacy scan ([sim_fixpoint_obs]). *)

type sim = {
  ops : Engine.Ops.t;
  tokens : int array;
  rings : Engine.Rings.t;
  evq : Engine.Eventq.t;
  counts : int array;
  exec : int array;
  cand : int array;  (* worklist stack of fire candidates *)
  in_cand : bool array;
  mutable ncand : int;
  mutable time : int;
}

let sim_create g exec_times =
  let n = Sdfg.num_actors g in
  {
    ops = Engine.Ops.of_graph g;
    tokens = Array.map (fun c -> c.Sdfg.tokens) (Sdfg.channels g);
    rings = Engine.Rings.create n;
    evq = Engine.Eventq.create ();
    counts = Array.make n 0;
    exec = exec_times;
    cand = Array.init n (fun i -> n - 1 - i);
    in_cand = Array.make n true;
    ncand = n;
    time = 0;
  }

let push_cand s a =
  if not s.in_cand.(a) then begin
    s.in_cand.(a) <- true;
    s.cand.(s.ncand) <- a;
    s.ncand <- s.ncand + 1
  end

let push_successors s a =
  let su = Engine.Ops.successors s.ops a in
  for i = 0 to Array.length su - 1 do
    push_cand s su.(i)
  done

let livelock () = invalid_arg "Selftimed.analyze: zero-time livelock"

let sim_fixpoint s =
  let instant_guard = ref 0 in
  while s.ncand > 0 do
    s.ncand <- s.ncand - 1;
    let a = s.cand.(s.ncand) in
    s.in_cand.(a) <- false;
    while Engine.Ops.enabled s.ops s.tokens a do
      incr instant_guard;
      if !instant_guard > 10_000_000 then livelock ();
      Engine.Ops.consume s.ops s.tokens a;
      s.counts.(a) <- s.counts.(a) + 1;
      if s.exec.(a) = 0 then begin
        Engine.Ops.produce s.ops s.tokens a;
        push_successors s a
      end
      else begin
        let c = s.time + s.exec.(a) in
        Engine.Rings.push s.rings a c;
        Engine.Eventq.push s.evq c a
      end
    done
  done

(* Reference-order fixpoint for observer runs: fires in actor index
   order, round-robin to a fixpoint, exactly like [analyze_reference] —
   the observer sequence is part of the engine≡reference contract. *)
let sim_fixpoint_obs s observe =
  let n = Array.length s.counts in
  let instant_guard = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    for a = 0 to n - 1 do
      while Engine.Ops.enabled s.ops s.tokens a do
        progress := true;
        incr instant_guard;
        if !instant_guard > 10_000_000 then livelock ();
        Engine.Ops.consume s.ops s.tokens a;
        s.counts.(a) <- s.counts.(a) + 1;
        observe s.time a;
        if s.exec.(a) = 0 then Engine.Ops.produce s.ops s.tokens a
        else begin
          let c = s.time + s.exec.(a) in
          Engine.Rings.push s.rings a c;
          Engine.Eventq.push s.evq c a
        end
      done
    done
  done

(* Advance to the next instant and complete everything due then.
   [false] when no firing is outstanding: deadlock. Heap pops at one
   instant may interleave actors arbitrarily; completions commute (they
   only add tokens), so the resulting state is the reference one. *)
let sim_advance s =
  if Engine.Eventq.is_empty s.evq then false
  else begin
    let t = Engine.Eventq.min_time s.evq in
    s.time <- t;
    while
      (not (Engine.Eventq.is_empty s.evq)) && Engine.Eventq.min_time s.evq = t
    do
      let a = Engine.Eventq.pop_min s.evq in
      ignore (Engine.Rings.pop_front s.rings a : int);
      Engine.Ops.produce s.ops s.tokens a;
      push_successors s a
    done;
    true
  end

let sum_counts counts = Array.fold_left ( + ) 0 counts

(* The anytime information a budget-stopped exploration still has,
   shared by the sequential explorer and the parallel sweep. *)
let make_partial ~reason ~explored ~time_reached ~counts g exec_times gamma =
  let n = Array.length counts in
  if Obs.enabled () then begin
    Obs.Counter.add "budget.partials" 1;
    Obs.Counter.add ("budget." ^ Budget.reason_label reason) 1
  end;
  Obs.Trace.instant "budget.trip"
    ~args:
      [
        ("reason", Obs.Event.String (Budget.reason_label reason));
        ("states", Obs.Event.Int explored);
      ];
  let iteration_upper_bound =
    cycle_upper_bound ~durations:(fun a -> exec_times.(a)) g
  in
  let provably_dead = Rat.equal iteration_upper_bound Rat.zero in
  (* A firing, once started, always completes; so if every actor has
     already started a full iteration's worth of firings, a complete
     iteration is executable and self-timed execution cannot deadlock. *)
  let dead_ruled_out =
    (not provably_dead)
    &&
    let ok = ref true in
    for a = 0 to n - 1 do
      if counts.(a) < gamma.(a) then ok := false
    done;
    !ok
  in
  let upper_bound =
    Array.init n (fun a ->
        if Rat.is_infinite iteration_upper_bound then Rat.infinity
        else Rat.mul_int iteration_upper_bound gamma.(a))
  in
  {
    reason;
    explored;
    time_reached;
    firings = sum_counts counts;
    iteration_upper_bound;
    upper_bound;
    provably_dead;
    dead_ruled_out;
  }

(* The packed engine, as an instance of the generic driver: states stream
   through {!Engine.Explore}'s reusable {!Engine.Pack} writer (channel
   token counts, then per-actor length-prefixed rings of time-relative
   completions) into its open-addressing {!Engine.Stateset} whose payload
   words carry the recurrence data (visit time, firing count of actor 0)
   — no Marshal, no string keys, no per-state boxed values. Outstanding
   firings live in {!Engine.Rings} (FIFO: equal execution times make
   completion order follow start order). *)
let analyze_raw ?observer ?(max_states = 2_000_000) ~budget g exec_times =
  validate g exec_times;
  let gamma = Repetition.vector_exn g in
  let n = Sdfg.num_actors g in
  let nc = Sdfg.num_channels g in
  let s = sim_create g exec_times in
  let tokens = s.tokens in
  let rings = s.rings in
  let counts = s.counts in
  let ex = Engine.Explore.create () in
  let pack = Engine.Explore.pack ex in
  let fire =
    match observer with
    | None -> fun () -> sim_fixpoint s
    | Some f -> fun () -> sim_fixpoint_obs s f
  in
  let pack_rel c = Engine.Pack.add_uint pack (c - s.time) in
  let encode () =
    for ci = 0 to nc - 1 do
      Engine.Pack.add_uint pack tokens.(ci)
    done;
    for a = 0 to n - 1 do
      Engine.Pack.add_uint pack (Engine.Rings.length rings a);
      Engine.Rings.iter rings a pack_rel
    done
  in
  (* Telemetry: recorded once per run (never inside the exploration loop),
     so disabled telemetry costs one branch per analysis. *)
  let record_metrics r =
    if Obs.enabled () then begin
      Obs.Counter.add "selftimed.runs" 1;
      Obs.Counter.add "selftimed.states" r.states;
      Obs.Counter.add "selftimed.transient" r.transient;
      Obs.Counter.add "selftimed.period" r.period;
      Obs.Counter.add "selftimed.firings" (sum_counts counts);
      Engine.Explore.record_gauges (Engine.Explore.stats ex)
    end;
    r
  in
  let rel =
    Engine.Explore.
      {
        fire;
        encode;
        payload0 = (fun () -> s.time);
        payload1 = (fun () -> counts.(0));
        advance = (fun () -> sim_advance s);
      }
  in
  match Engine.Explore.run ex ~max_states ~budget rel with
  | Engine.Explore.Recurred { p0 = t0; p1 = c0 } ->
      let period = s.time - t0 in
      let iterations = (counts.(0) - c0) / gamma.(0) in
      assert (counts.(0) - c0 = iterations * gamma.(0));
      let throughput =
        Array.init n (fun a -> Rat.make (iterations * gamma.(a)) period)
      in
      Ok
        (record_metrics
           {
             throughput;
             period;
             iterations_per_period = iterations;
             transient = t0;
             states = Engine.Explore.length ex;
           })
  | Engine.Explore.Deadlocked ->
      Obs.Counter.add "selftimed.deadlocks" 1;
      raise Deadlocked
  | Engine.Explore.Cap_exceeded ->
      Obs.Counter.add "selftimed.cap_aborts" 1;
      raise (State_space_exceeded max_states)
  | Engine.Explore.Budget_stop reason ->
      Error
        (make_partial ~reason ~explored:(Engine.Explore.length ex)
           ~time_reached:s.time ~counts g exec_times gamma)

let analyze_uncached ?observer ?max_states g exec_times =
  match analyze_raw ?observer ?max_states ~budget:Budget.infinite g exec_times with
  | Ok r -> r
  | Error _ -> assert false (* an infinite budget is never exhausted *)

(* The analysis depends only on the graph structure (channel endpoints,
   rates, initial tokens), the execution times and the state cap — never on
   actor or channel names. Leaving names out of the key makes structurally
   identical graphs share cache entries even when they come from different
   applications (e.g. copies of one application in a multi-app workload).
   Encoded with the engine's packer: every field a varint, counts included
   up front, so equal keys decode to equal inputs (injectivity). *)
let cache_key ?(max_states = 2_000_000) g exec_times =
  let p = Engine.Pack.create ~initial:64 () in
  Engine.Pack.add_uint p (Sdfg.num_actors g);
  Engine.Pack.add_uint p (Sdfg.num_channels g);
  Array.iter
    (fun c ->
      Engine.Pack.add_uint p c.Sdfg.src;
      Engine.Pack.add_uint p c.Sdfg.dst;
      Engine.Pack.add_uint p c.Sdfg.prod;
      Engine.Pack.add_uint p c.Sdfg.cons;
      Engine.Pack.add_uint p c.Sdfg.tokens)
    (Sdfg.channels g);
  Array.iter (fun tau -> Engine.Pack.add_int p tau) exec_times;
  Engine.Pack.add_uint p max_states;
  Engine.Pack.contents p

(* Negative outcomes are part of the analysis result, so they are cached
   too, reified as values and replayed as exceptions on a hit. *)
type outcome = Res of result | Dead | Exceeded of int

let cache : outcome Memo.t = Memo.create ~name:"selftimed" ()

let analyze ?observer ?(max_states = 2_000_000) g exec_times =
  match observer with
  | Some _ ->
      (* An observer sees every firing of the transient and periodic
         phases; a cached result cannot replay them. *)
      analyze_uncached ?observer ~max_states g exec_times
  | None -> (
      (* Validation errors are caller bugs, not analysis outcomes: raise
         them before touching the cache. *)
      validate g exec_times;
      let key = cache_key ~max_states g exec_times in
      let outcome =
        Memo.find_or_compute cache ~key (fun () ->
            match analyze_uncached ~max_states g exec_times with
            | r -> Res r
            | exception Deadlocked -> Dead
            | exception State_space_exceeded n -> Exceeded n)
      in
      match outcome with
      | Res r -> r
      | Dead -> raise Deadlocked
      | Exceeded n -> raise (State_space_exceeded n))

let analyze_budgeted ?observer ?(max_states = 2_000_000) ~budget g exec_times =
  match observer with
  | Some _ -> analyze_raw ?observer ~max_states ~budget g exec_times
  | None -> (
      validate g exec_times;
      let key = cache_key ~max_states g exec_times in
      (* Probe the cache first: a completed outcome from an earlier
         (possibly unbudgeted) run answers instantly and consumes no
         budget. On a miss, only completed outcomes are stored — a
         [Partial] reflects this run's budget, not the graph, and must
         never poison the cache. *)
      match Memo.find cache ~key with
      | Some (Res r) -> Ok r
      | Some Dead -> raise Deadlocked
      | Some (Exceeded n) -> raise (State_space_exceeded n)
      | None -> (
          match analyze_raw ~max_states ~budget g exec_times with
          | Ok r as ok ->
              Memo.add cache ~key (Res r);
              ok
          | Error _ as partial -> partial
          | exception Deadlocked ->
              Memo.add cache ~key Dead;
              raise Deadlocked
          | exception State_space_exceeded n ->
              Memo.add cache ~key (Exceeded n);
              raise (State_space_exceeded n)))

(* ------------------------------------------------------------------ *)
(* Sharded parallel frontier sweep.

   Maximal-progress execution is deterministic, so the state space is a
   ρ-shaped chain — the "frontier" is always one state wide. What costs
   per state is not branching but membership: packing the state and
   probing/inserting the seen-set dominate the step. The sweep therefore
   pipelines the chain across domains instead of partitioning a tree:

   - the coordinating domain runs the simulator, emits each state as a
     raw word snapshot into the current chunk (a cheap array blit), folds
     a word-level route hash on the way and stamps the owning shard
     (hash-prefix → shard, {!Engine.Sharded_stateset.owner_of_hash});
   - every published chunk is scanned by all shard domains; each shard
     varint-packs and [find_or_add]s only the records it owns, into its
     private arena — lock-free by ownership;
   - recurrence: a shard's first owned revisit is its minimal one (it
     processes owned records in chain order), and the global head h* is
     the CAS-min over shards ({!atomic_min}) — the smallest chain index
     whose state was seen before, resolved identically under every
     interleaving, so the result is bit-identical to the sequential
     engine's;
   - budgets: the simulator runs the exact per-state [Budget.check] the
     sequential engine runs (with the shard-published arena sizes), and
     every shard polls [Budget.exceeded] once per chunk, so cancel and
     deadline trips are observed by all domains.

   Chunks are recycled through a freelist under one mutex with a
   per-chunk atomic refcount (initialised to the shard count; the last
   shard to finish returns it), which both bounds memory and provides
   backpressure on the simulator. See DESIGN §12. *)

let chunk_recs = 512
let chunk_words_soft = 24 * 1024

type chunk = {
  mutable words : int array;  (* raw snapshots, back to back *)
  mutable used : int;
  recs : int array;  (* word offset of record j; recs.(nrec) = used *)
  rec_owner : int array;
  rec_time : int array;  (* simulator clock when the state was reached *)
  rec_c0 : int array;  (* firing count of actor 0 there *)
  mutable nrec : int;
  mutable base : int;  (* chain index of record 0 *)
  refcnt : int Atomic.t;  (* shards still to scan this chunk *)
}

let make_chunk () =
  {
    words = Array.make 4096 0;
    used = 0;
    recs = Array.make (chunk_recs + 1) 0;
    rec_owner = Array.make chunk_recs 0;
    rec_time = Array.make chunk_recs 0;
    rec_c0 = Array.make chunk_recs 0;
    nrec = 0;
    base = 0;
    refcnt = Atomic.make 0;
  }

type squeue = {
  m : Mutex.t;
  can_consume : Condition.t;
  can_produce : Condition.t;
  mutable pub : chunk array;  (* published log, indexed by publish order *)
  mutable npub : int;
  free : chunk Queue.t;
  mutable producing : bool;
}

let publish_chunk q ~shards ch =
  Atomic.set ch.refcnt shards;
  Mutex.lock q.m;
  if q.npub = Array.length q.pub then begin
    let np = Array.make (2 * q.npub) ch in
    Array.blit q.pub 0 np 0 q.npub;
    q.pub <- np
  end;
  q.pub.(q.npub) <- ch;
  q.npub <- q.npub + 1;
  Condition.broadcast q.can_consume;
  Mutex.unlock q.m

let acquire_chunk q ~base =
  Mutex.lock q.m;
  while Queue.is_empty q.free do
    Condition.wait q.can_produce q.m
  done;
  let ch = Queue.pop q.free in
  Mutex.unlock q.m;
  ch.used <- 0;
  ch.nrec <- 0;
  ch.base <- base;
  ch

let release_chunk q ch =
  if Atomic.fetch_and_add ch.refcnt (-1) = 1 then begin
    Mutex.lock q.m;
    Queue.push ch q.free;
    Condition.signal q.can_produce;
    Mutex.unlock q.m
  end

(* Written by exactly one shard domain; read by the coordinator after
   [Domain.join] (which synchronises). *)
type shard_res = {
  mutable hit_idx : int;  (* this shard's first owned revisit; max_int *)
  mutable hit_t0 : int;  (* payload stored at the state's first visit *)
  mutable hit_c0 : int;
  mutable hit_time : int;  (* the revisit record's clock and count *)
  mutable hit_cnt : int;
  mutable frontier : int;  (* owned records below this index were checked *)
  mutable owned : int;  (* records this shard owned and processed *)
  mutable err : exn option;
}

let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

let reason_code = function
  | Budget.Deadline -> 1
  | Budget.States -> 2
  | Budget.Memory -> 3
  | Budget.Cancelled -> 4

let reason_of_code = function
  | 1 -> Budget.Deadline
  | 2 -> Budget.States
  | 3 -> Budget.Memory
  | _ -> Budget.Cancelled

let err_code = -1

let shard_worker q ss budget min_hit stop res sid =
  let pack = Engine.Pack.create () in
  let active = ref true in
  let qi = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock q.m;
    while !qi >= q.npub && q.producing do
      Condition.wait q.can_consume q.m
    done;
    if !qi >= q.npub then begin
      Mutex.unlock q.m;
      running := false
    end
    else begin
      let ch = q.pub.(!qi) in
      Mutex.unlock q.m;
      incr qi;
      if !active then begin
        (* Records at or past the confirmed minimum hit cannot yield a
           smaller one (owned records arrive in chain order); a stale
           [mh] only wastes work, never soundness. *)
        let mh = Atomic.get min_hit in
        let words = ch.words in
        (try
           (try
              for j = 0 to ch.nrec - 1 do
                if ch.rec_owner.(j) = sid then begin
                  let idx = ch.base + j in
                  if idx < mh then begin
                    res.owned <- res.owned + 1;
                    Engine.Pack.reset pack;
                    for w = ch.recs.(j) to ch.recs.(j + 1) - 1 do
                      Engine.Pack.add_uint pack words.(w)
                    done;
                    let revisit, q0, q1 =
                      Engine.Sharded_stateset.find_or_add ss ~shard:sid pack
                        ~p0:ch.rec_time.(j) ~p1:ch.rec_c0.(j)
                    in
                    if revisit then begin
                      res.hit_idx <- idx;
                      res.hit_t0 <- q0;
                      res.hit_c0 <- q1;
                      res.hit_time <- ch.rec_time.(j);
                      res.hit_cnt <- ch.rec_c0.(j);
                      (* Everything this shard owns below its own first
                         hit has been checked; nothing it would process
                         later can lower the global minimum below it. *)
                      res.frontier <- max_int;
                      atomic_min min_hit idx;
                      active := false;
                      raise_notrace Exit
                    end
                  end
                end
              done;
              res.frontier <- ch.base + ch.nrec
            with Exit -> ());
           if !active then begin
             Engine.Sharded_stateset.publish ss sid;
             if not (Budget.is_infinite budget) then
               match Budget.exceeded budget with
               | Some r ->
                   ignore
                     (Atomic.compare_and_set stop 0 (reason_code r) : bool);
                   active := false
               | None -> ()
           end
         with e ->
           res.err <- Some e;
           active := false;
           ignore (Atomic.compare_and_set stop 0 err_code : bool))
      end;
      (* Even a stopped shard keeps draining the queue so refcounts reach
         zero and the coordinator is never starved of free chunks. *)
      release_chunk q ch
    end
  done

(* Spawn-slot accounting: sweeps create their own short-lived domains
   (never Par pool workers — a sweep must be safe to run while the pool
   is busy), bounded globally so stacked sweeps cannot exhaust the
   runtime's domain limit. Doubles as the leak oracle for tests: outside
   a sweep the count is 0. *)
let live_domains = Atomic.make 0
let max_sweep_shards = 63
let live_sweep_domains () = Atomic.get live_domains

let try_reserve_shards k =
  let rec go k =
    if k <= 0 then 0
    else
      let cur = Atomic.get live_domains in
      if cur + k > max_sweep_shards then go (k - 1)
      else if Atomic.compare_and_set live_domains cur (cur + k) then k
      else go k
  in
  go k

let release_shards k = ignore (Atomic.fetch_and_add live_domains (-k) : int)

type sweep_stop =
  | Sw_confirmed  (* a shard confirmed a revisit *)
  | Sw_cap  (* max_states emitted without confirmation *)
  | Sw_budget of Budget.reason  (* the simulator's own budget check *)
  | Sw_stopped of int  (* a shard raised the stop flag *)
  | Sw_deadlock

let sweep_raw ~shards ~max_states ~budget g exec_times =
  let gamma = Repetition.vector_exn g in
  let n = Sdfg.num_actors g in
  let nc = Sdfg.num_channels g in
  let s = sim_create g exec_times in
  let ss = Engine.Sharded_stateset.create ~shards () in
  let q =
    {
      m = Mutex.create ();
      can_consume = Condition.create ();
      can_produce = Condition.create ();
      pub = Array.make 16 (make_chunk ());
      npub = 0;
      free = Queue.create ();
      producing = true;
    }
  in
  for _ = 1 to (2 * shards) + 2 do
    Queue.push (make_chunk ()) q.free
  done;
  let min_hit = Atomic.make max_int in
  let stop = Atomic.make 0 in
  let results =
    Array.init shards (fun _ ->
        {
          hit_idx = max_int;
          hit_t0 = 0;
          hit_c0 = 0;
          hit_time = 0;
          hit_cnt = 0;
          frontier = 0;
          owned = 0;
          err = None;
        })
  in
  let domains = ref [] in
  let stop_producing () =
    Mutex.lock q.m;
    q.producing <- false;
    Condition.broadcast q.can_consume;
    Mutex.unlock q.m
  in
  (try
     for sid = 0 to shards - 1 do
       domains :=
         Domain.spawn (fun () ->
             shard_worker q ss budget min_hit stop results.(sid) sid)
         :: !domains
     done
   with e ->
     (* Could not spawn the full fleet (domain limit): wind down the
        part that did start and re-raise; the caller falls back. *)
     stop_producing ();
     List.iter Domain.join !domains;
     raise e);
  let emit ch =
    let off = ch.used in
    let words = ch.words in
    for ci = 0 to nc - 1 do
      words.(off + ci) <- s.tokens.(ci)
    done;
    let pos = Engine.Rings.snapshot_into s.rings ~now:s.time words (off + nc) in
    let h = ref Engine.Sharded_stateset.word_hash_seed in
    for i = off to pos - 1 do
      h := Engine.Sharded_stateset.word_hash_mix !h words.(i)
    done;
    let j = ch.nrec in
    ch.recs.(j) <- off;
    ch.recs.(j + 1) <- pos;
    ch.rec_owner.(j) <- Engine.Sharded_stateset.owner_of_hash ss !h;
    ch.rec_time.(j) <- s.time;
    ch.rec_c0.(j) <- s.counts.(0);
    ch.nrec <- j + 1;
    ch.used <- pos
  in
  let produced = ref 0 in
  let run_simulator () =
    let cur = ref (acquire_chunk q ~base:0) in
    let verdict = ref None in
    while !verdict = None do
      sim_fixpoint s;
      let ch0 = !cur in
      if ch0.nrec = chunk_recs || ch0.used >= chunk_words_soft then begin
        publish_chunk q ~shards ch0;
        cur := acquire_chunk q ~base:!produced
      end;
      let ch = !cur in
      let need = nc + n + Engine.Rings.total s.rings in
      if ch.used + need > Array.length ch.words then begin
        let nw =
          Array.make (max (2 * Array.length ch.words) (ch.used + need)) 0
        in
        Array.blit ch.words 0 nw 0 ch.used;
        ch.words <- nw
      end;
      emit ch;
      incr produced;
      (* Decision order per chain index mirrors the sequential engine:
         revisit (confirmed asynchronously, resolved post-join), then the
         state cap, then the budget, then deadlock on advance. *)
      if Atomic.get min_hit < max_int then verdict := Some Sw_confirmed
      else if !produced > max_states then verdict := Some Sw_cap
      else begin
        (if not (Budget.is_infinite budget) then
           let arena_bytes =
             if Budget.arena_limited budget then
               Engine.Sharded_stateset.published_arena_bytes ss
             else 0
           in
           match Budget.check budget ~states:!produced ~arena_bytes with
           | Some r -> verdict := Some (Sw_budget r)
           | None -> ());
        if !verdict = None then begin
          let sc = Atomic.get stop in
          if sc <> 0 then verdict := Some (Sw_stopped sc)
          else if not (sim_advance s) then verdict := Some Sw_deadlock
        end
      end
    done;
    let ch = !cur in
    if ch.nrec > 0 then publish_chunk q ~shards ch
    else begin
      Mutex.lock q.m;
      Queue.push ch q.free;
      Mutex.unlock q.m
    end;
    match !verdict with Some v -> v | None -> assert false
  in
  let verdict =
    Fun.protect
      ~finally:(fun () ->
        stop_producing ();
        List.iter Domain.join !domains)
      run_simulator
  in
  (* Joined: shard results and tables are plainly readable now. *)
  Array.iter
    (fun r -> match r.err with Some e -> raise e | None -> ())
    results;
  let record_sweep_metrics r =
    if Obs.enabled () then begin
      Obs.Counter.add "selftimed.runs" 1;
      Obs.Counter.add "selftimed.states" r.states;
      Obs.Counter.add "selftimed.transient" r.transient;
      Obs.Counter.add "selftimed.period" r.period;
      Obs.Counter.add "selftimed.firings" (sum_counts s.counts);
      Obs.Counter.add "selftimed.sweep.runs" 1;
      Obs.Gauge.set_int "selftimed.sweep.domains" (shards + 1);
      Engine.Explore.record_gauges (Engine.Sharded_stateset.stats ss);
      let max_owned = ref 0 and total_owned = ref 0 in
      for i = 0 to shards - 1 do
        let st = Engine.Sharded_stateset.shard_stats ss i in
        let p = Printf.sprintf "engine.shard.%d." i in
        Obs.Gauge.set (p ^ "occupancy")
          (float_of_int st.Engine.Stateset.states
          /. float_of_int (max 1 st.Engine.Stateset.slots));
        Obs.Gauge.set_int (p ^ "max_probe") st.Engine.Stateset.max_probe;
        Obs.Gauge.set_int (p ^ "arena_bytes") st.Engine.Stateset.arena_bytes;
        if results.(i).owned > !max_owned then max_owned := results.(i).owned;
        total_owned := !total_owned + results.(i).owned
      done;
      let mean = float_of_int !total_owned /. float_of_int shards in
      Obs.Gauge.set "engine.shard_imbalance"
        (if !total_owned = 0 then 1.0 else float_of_int !max_owned /. mean)
    end;
    r
  in
  (* Resolve the recurrence head: the smallest confirmed hit index, valid
     only if every shard checked all its owned records below it (a shard
     stopped by the budget freezes its frontier early). *)
  let h_star = ref max_int and winner = ref None in
  Array.iter
    (fun r ->
      if r.hit_idx < !h_star then begin
        h_star := r.hit_idx;
        winner := Some r
      end)
    results;
  let hit_valid =
    !h_star < max_int
    && Array.for_all (fun r -> r.frontier >= !h_star) results
  in
  match (hit_valid, !winner) with
  | true, Some w ->
      let period = w.hit_time - w.hit_t0 in
      let iterations = (w.hit_cnt - w.hit_c0) / gamma.(0) in
      assert (w.hit_cnt - w.hit_c0 = iterations * gamma.(0));
      let throughput =
        Array.init n (fun a -> Rat.make (iterations * gamma.(a)) period)
      in
      Ok
        (record_sweep_metrics
           {
             throughput;
             period;
             iterations_per_period = iterations;
             transient = w.hit_t0;
             states = !h_star;
           })
  | _ -> (
      let explored = (Engine.Sharded_stateset.stats ss).Engine.Stateset.states in
      let partial reason =
        Error
          (make_partial ~reason ~explored ~time_reached:s.time ~counts:s.counts
             g exec_times gamma)
      in
      match verdict with
      | Sw_budget r -> partial r
      | Sw_stopped c when c <> err_code -> partial (reason_of_code c)
      | Sw_deadlock ->
          Obs.Counter.add "selftimed.deadlocks" 1;
          raise Deadlocked
      | Sw_cap ->
          Obs.Counter.add "selftimed.cap_aborts" 1;
          raise (State_space_exceeded max_states)
      | Sw_confirmed | Sw_stopped _ ->
          (* A hit was flagged but some budget-frozen shard might own a
             smaller one: the only stop reasons that freeze frontiers are
             budget trips, reported via the stop flag. *)
          let sc = Atomic.get stop in
          if sc <> 0 && sc <> err_code then partial (reason_of_code sc)
          else assert false)

(* Parallel entry points. [domains = k] uses the coordinator plus
   [k - 1] shard domains; [k <= 1], a saturated spawn budget, or a call
   from inside a Par pool task (the daemon's worker pool) all degrade to
   the sequential engine — same result, no nested fan-out, no deadlock. *)
let sweep_or_seq ~domains ~max_states ~budget g exec_times =
  validate g exec_times;
  let want = min (domains - 1) max_sweep_shards in
  if want < 1 then analyze_raw ~max_states ~budget g exec_times
  else if Par.inside_task () then begin
    Obs.Counter.add "selftimed.sweep.degraded" 1;
    analyze_raw ~max_states ~budget g exec_times
  end
  else begin
    let shards = try_reserve_shards want in
    if shards < 1 then begin
      Obs.Counter.add "selftimed.sweep.degraded" 1;
      analyze_raw ~max_states ~budget g exec_times
    end
    else
      Fun.protect
        ~finally:(fun () -> release_shards shards)
        (fun () -> sweep_raw ~shards ~max_states ~budget g exec_times)
  end

let analyze_parallel ?(domains = 1) ?(max_states = 2_000_000) g exec_times =
  if domains <= 1 then analyze ~max_states g exec_times
  else begin
    validate g exec_times;
    let key = cache_key ~max_states g exec_times in
    let outcome =
      Memo.find_or_compute cache ~key (fun () ->
          match
            sweep_or_seq ~domains ~max_states ~budget:Budget.infinite g
              exec_times
          with
          | Ok r -> Res r
          | Error _ -> assert false (* infinite budget never trips *)
          | exception Deadlocked -> Dead
          | exception State_space_exceeded n -> Exceeded n)
    in
    match outcome with
    | Res r -> r
    | Dead -> raise Deadlocked
    | Exceeded n -> raise (State_space_exceeded n)
  end

let analyze_parallel_budgeted ?(domains = 1) ?(max_states = 2_000_000) ~budget
    g exec_times =
  if domains <= 1 then analyze_budgeted ~max_states ~budget g exec_times
  else begin
    validate g exec_times;
    let key = cache_key ~max_states g exec_times in
    match Memo.find cache ~key with
    | Some (Res r) -> Ok r
    | Some Dead -> raise Deadlocked
    | Some (Exceeded n) -> raise (State_space_exceeded n)
    | None -> (
        match sweep_or_seq ~domains ~max_states ~budget g exec_times with
        | Ok r as ok ->
            Memo.add cache ~key (Res r);
            ok
        | Error _ as partial -> partial
        | exception Deadlocked ->
            Memo.add cache ~key Dead;
            raise Deadlocked
        | exception State_space_exceeded n ->
            Memo.add cache ~key (Exceeded n);
            raise (State_space_exceeded n))
  end

let throughput ?max_states g exec_times a =
  (analyze ?max_states g exec_times).throughput.(a)
