module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Repetition = Sdf.Repetition
module Cycles = Sdf.Cycles

type result = {
  throughput : Rat.t array;
  period : int;
  iterations_per_period : int;
  transient : int;
  states : int;
}

type partial = {
  reason : Budget.reason;
  explored : int;
  time_reached : int;
  firings : int;
  iteration_upper_bound : Rat.t;
  upper_bound : Rat.t array;
  provably_dead : bool;
  dead_ruled_out : bool;
}

exception Deadlocked
exception State_space_exceeded of int

exception Budget_stop of Budget.reason
(* Internal: unwinds the exploration when the budget runs out. *)

(* One sample per run: the seen-set's longest probe sequence. The gauge of
   the same name only keeps the last run; the histogram shows whether long
   probe chains are an outlier or the norm across a batch. *)
let probe_len_hist = Obs.Histogram.make "engine.probe_len"

(* Anytime upper bound on the iteration rate, from the simple cycles of the
   graph alone — no exploration needed, so it is available no matter how
   early a budgeted run stops.

   For a simple cycle C, weight each channel c by 1/(prod(c)·gamma(src c)).
   Consistency (gamma(src)·prod = gamma(dst)·cons) makes the weighted token
   sum S over C invariant under every *completed* firing: a firing of cycle
   actor a removes cons/(prod_in·gamma(src_in)) = 1/gamma(a) at its start
   and returns prod_out/(prod_out·gamma(a)) = 1/gamma(a) at its end; actors
   off the cycle never touch C's channels (both endpoints of a cycle
   channel lie on C). So at any instant the firings in flight on C have
   borrowed at most S0, the initial weighted sum — each firing of a holds
   1/gamma(a) for at least duration d_a. At a sustained iteration rate of
   lambda, actor a starts lambda·gamma(a) firings per time unit, holding
   1/gamma(a) each for d_a: total borrowed mass lambda·Σ_{a∈C} d_a ≤ S0,
   hence lambda ≤ S0 / Σ d_a (Little's law). S0 = 0 means no firing on C
   can ever start: the iteration rate is provably 0. Σ d_a = 0 yields no
   constraint from C. The minimum over the enumerated cycles is sound even
   when enumeration truncates (fewer cycles can only weaken the bound). *)
let cycle_upper_bound ?max_cycles ~durations g =
  let gamma = Repetition.vector_exn g in
  let channels = Sdfg.channels g in
  let enum = Cycles.simple_cycles ?max_cycles g in
  List.fold_left
    (fun best cycle ->
      let tokens_norm =
        List.fold_left
          (fun acc ci ->
            let c = channels.(ci) in
            Rat.add acc
              (Rat.make c.Sdfg.tokens (c.Sdfg.prod * gamma.(c.Sdfg.src))))
          Rat.zero cycle
      in
      (* Each actor of a simple cycle is the source of exactly one of its
         channels, so summing over channel sources visits each actor once. *)
      let duration =
        List.fold_left
          (fun acc ci -> acc + durations channels.(ci).Sdfg.src)
          0 cycle
      in
      let bound =
        if Rat.equal tokens_norm Rat.zero then Rat.zero
        else if duration = 0 then Rat.infinity
        else Rat.div tokens_norm (Rat.of_int duration)
      in
      Rat.min best bound)
    Rat.infinity enum.Cycles.cycles

let validate g exec_times =
  let n = Sdfg.num_actors g in
  if n = 0 then invalid_arg "Selftimed.analyze: empty graph";
  if Array.length exec_times <> n then
    invalid_arg "Selftimed.analyze: exec_times length mismatch";
  Array.iter
    (fun t -> if t < 0 then invalid_arg "Selftimed.analyze: negative execution time")
    exec_times;
  for a = 0 to n - 1 do
    if Sdfg.in_channels g a = [] then
      invalid_arg
        (Printf.sprintf
           "Selftimed.analyze: actor %s has no input channel (unbounded \
            auto-concurrency)"
           (Sdfg.actor_name g a))
  done

(* The pre-engine exploration (sorted lists of remaining times, Marshal
   snapshots into a string-keyed Hashtbl), retained as the slow half of the
   differential oracle [diff.engine-vs-reference] and as the baseline of
   the exploration microbenchmark. Behaviour-defining: the packed engine
   below must agree with it on every input. *)
let analyze_reference ?observer ?(max_states = 2_000_000) g exec_times =
  validate g exec_times;
  let gamma = Repetition.vector_exn g in
  let n = Sdfg.num_actors g in
  let ops = Engine.Ops.of_graph g in
  let tokens = Array.map (fun c -> c.Sdfg.tokens) (Sdfg.channels g) in
  let active = Array.make n [] in
  let counts = Array.make n 0 in
  let time = ref 0 in
  let seen : (string, int * int array) Hashtbl.t = Hashtbl.create 4096 in
  (* Start every enabled firing; zero-time firings complete on the spot and
     may enable more starts, hence the fixpoint. The guard protects against
     zero-time livelock (a token-producing cycle of zero-time actors). *)
  let start_fixpoint () =
    let instant_guard = ref 0 in
    let progress = ref true in
    while !progress do
      progress := false;
      for a = 0 to n - 1 do
        while Engine.Ops.enabled ops tokens a do
          progress := true;
          incr instant_guard;
          if !instant_guard > 10_000_000 then
            invalid_arg "Selftimed.analyze: zero-time livelock";
          Engine.Ops.consume ops tokens a;
          counts.(a) <- counts.(a) + 1;
          (match observer with Some f -> f !time a | None -> ());
          if exec_times.(a) = 0 then Engine.Ops.produce ops tokens a
          else active.(a) <- Engine.Ops.insert_sorted exec_times.(a) active.(a)
        done
      done
    done
  in
  let snapshot () =
    Marshal.to_string (tokens, active) [ Marshal.No_sharing ]
  in
  let rec explore () =
    start_fixpoint ();
    let key = snapshot () in
    match Hashtbl.find_opt seen key with
    | Some (t0, counts0) ->
        let period = !time - t0 in
        let iterations = (counts.(0) - counts0.(0)) / gamma.(0) in
        assert (counts.(0) - counts0.(0) = iterations * gamma.(0));
        let throughput =
          Array.init n (fun a -> Rat.make (iterations * gamma.(a)) period)
        in
        {
          throughput;
          period;
          iterations_per_period = iterations;
          transient = t0;
          states = Hashtbl.length seen;
        }
    | None ->
        if Hashtbl.length seen >= max_states then
          raise (State_space_exceeded max_states);
        Hashtbl.add seen key (!time, Array.copy counts);
        (* Advance to the earliest completion. *)
        let dt =
          Array.fold_left
            (fun acc l -> match l with [] -> acc | r :: _ -> min acc r)
            max_int active
        in
        if dt = max_int then raise Deadlocked;
        time := !time + dt;
        for a = 0 to n - 1 do
          let rec settle = function
            | r :: rest when r = dt ->
                Engine.Ops.produce ops tokens a;
                settle rest
            | l -> List.map (fun r -> r - dt) l
          in
          active.(a) <- settle active.(a)
        done;
        explore ()
  in
  explore ()

(* The packed engine: states stream through one reusable {!Engine.Pack}
   writer (channel token counts, then per-actor length-prefixed rings of
   time-relative completions) into an open-addressing {!Engine.Stateset}
   whose payload words carry the recurrence data (visit time, firing count
   of actor 0) — no Marshal, no string keys, no per-state boxed values.
   Outstanding firings live in {!Engine.Rings} (FIFO: equal execution
   times make completion order follow start order). *)
let analyze_raw ?observer ?(max_states = 2_000_000) ~budget g exec_times =
  validate g exec_times;
  let gamma = Repetition.vector_exn g in
  let n = Sdfg.num_actors g in
  let nc = Sdfg.num_channels g in
  let ops = Engine.Ops.of_graph g in
  let tokens = Array.map (fun c -> c.Sdfg.tokens) (Sdfg.channels g) in
  let rings = Engine.Rings.create n in
  let counts = Array.make n 0 in
  let time = ref 0 in
  let seen = Engine.Stateset.create () in
  let pack = Engine.Pack.create () in
  let produce_completed a = Engine.Ops.produce ops tokens a in
  let start_fixpoint () =
    let instant_guard = ref 0 in
    let progress = ref true in
    while !progress do
      progress := false;
      for a = 0 to n - 1 do
        while Engine.Ops.enabled ops tokens a do
          progress := true;
          incr instant_guard;
          if !instant_guard > 10_000_000 then
            invalid_arg "Selftimed.analyze: zero-time livelock";
          Engine.Ops.consume ops tokens a;
          counts.(a) <- counts.(a) + 1;
          (match observer with Some f -> f !time a | None -> ());
          if exec_times.(a) = 0 then Engine.Ops.produce ops tokens a
          else Engine.Rings.push rings a (!time + exec_times.(a))
        done
      done
    done
  in
  let pack_rel c = Engine.Pack.add_uint pack (c - !time) in
  let pack_state () =
    Engine.Pack.reset pack;
    for ci = 0 to nc - 1 do
      Engine.Pack.add_uint pack tokens.(ci)
    done;
    for a = 0 to n - 1 do
      Engine.Pack.add_uint pack (Engine.Rings.length rings a);
      Engine.Rings.iter rings a pack_rel
    done
  in
  (* Telemetry: recorded once per run (never inside the exploration loop),
     so disabled telemetry costs one branch per analysis. *)
  let record_metrics r =
    if Obs.enabled () then begin
      Obs.Counter.add "selftimed.runs" 1;
      Obs.Counter.add "selftimed.states" r.states;
      Obs.Counter.add "selftimed.transient" r.transient;
      Obs.Counter.add "selftimed.period" r.period;
      Obs.Counter.add "selftimed.firings" (Array.fold_left ( + ) 0 counts);
      let s = Engine.Stateset.stats seen in
      Obs.Gauge.set_int "engine.arena_bytes" s.Engine.Stateset.arena_bytes;
      Obs.Gauge.set "engine.bytes_per_state"
        (float_of_int s.Engine.Stateset.arena_bytes
        /. float_of_int (max 1 s.Engine.Stateset.states));
      Obs.Gauge.set "engine.occupancy"
        (float_of_int s.Engine.Stateset.states
        /. float_of_int (max 1 s.Engine.Stateset.slots));
      Obs.Gauge.set_int "engine.max_probe" s.Engine.Stateset.max_probe;
      Obs.Histogram.record probe_len_hist
        (float_of_int s.Engine.Stateset.max_probe)
    end;
    r
  in
  let rec explore () =
    start_fixpoint ();
    pack_state ();
    let revisit, t0, c0 =
      Engine.Stateset.find_or_add seen pack ~p0:!time ~p1:counts.(0)
    in
    if revisit then begin
      let period = !time - t0 in
      let iterations = (counts.(0) - c0) / gamma.(0) in
      assert (counts.(0) - c0 = iterations * gamma.(0));
      let throughput =
        Array.init n (fun a -> Rat.make (iterations * gamma.(a)) period)
      in
      {
        throughput;
        period;
        iterations_per_period = iterations;
        transient = t0;
        states = Engine.Stateset.length seen;
      }
    end
    else begin
      (* The reference engine checks the cap before storing; the stateset
         stores first, so "stored one too many" is the same condition. *)
      if Engine.Stateset.length seen > max_states then
        raise (State_space_exceeded max_states);
      (* Budget probe: one load and one branch per state when infinite;
         state/arena caps are exact, clock and token amortised inside
         [Budget.check]. *)
      if not (Budget.is_infinite budget) then begin
        let arena_bytes =
          if Budget.arena_limited budget then Engine.Stateset.arena_bytes seen
          else 0
        in
        match
          Budget.check budget
            ~states:(Engine.Stateset.length seen)
            ~arena_bytes
        with
        | Some reason -> raise (Budget_stop reason)
        | None -> ()
      end;
      let next = Engine.Rings.min_head rings in
      if next = max_int then raise Deadlocked;
      time := next;
      Engine.Rings.pop_due rings ~now:next produce_completed;
      explore ()
    end
  in
  match explore () with
  | r -> Ok (record_metrics r)
  | exception Deadlocked ->
      Obs.Counter.add "selftimed.deadlocks" 1;
      raise Deadlocked
  | exception State_space_exceeded n ->
      Obs.Counter.add "selftimed.cap_aborts" 1;
      raise (State_space_exceeded n)
  | exception Budget_stop reason ->
      if Obs.enabled () then begin
        Obs.Counter.add "budget.partials" 1;
        Obs.Counter.add ("budget." ^ Budget.reason_label reason) 1
      end;
      Obs.Trace.instant "budget.trip"
        ~args:
          [
            ("reason", Obs.Event.String (Budget.reason_label reason));
            ("states", Obs.Event.Int (Engine.Stateset.length seen));
          ];
      let iteration_upper_bound =
        cycle_upper_bound ~durations:(fun a -> exec_times.(a)) g
      in
      let provably_dead = Rat.equal iteration_upper_bound Rat.zero in
      (* A firing, once started, always completes; so if every actor has
         already started a full iteration's worth of firings, a complete
         iteration is executable and self-timed execution cannot
         deadlock. *)
      let dead_ruled_out =
        (not provably_dead)
        &&
        let ok = ref true in
        for a = 0 to n - 1 do
          if counts.(a) < gamma.(a) then ok := false
        done;
        !ok
      in
      let upper_bound =
        Array.init n (fun a ->
            if Rat.is_infinite iteration_upper_bound then Rat.infinity
            else Rat.mul_int iteration_upper_bound gamma.(a))
      in
      Error
        {
          reason;
          explored = Engine.Stateset.length seen;
          time_reached = !time;
          firings = Array.fold_left ( + ) 0 counts;
          iteration_upper_bound;
          upper_bound;
          provably_dead;
          dead_ruled_out;
        }

let analyze_uncached ?observer ?max_states g exec_times =
  match analyze_raw ?observer ?max_states ~budget:Budget.infinite g exec_times with
  | Ok r -> r
  | Error _ -> assert false (* an infinite budget is never exhausted *)

(* The analysis depends only on the graph structure (channel endpoints,
   rates, initial tokens), the execution times and the state cap — never on
   actor or channel names. Leaving names out of the key makes structurally
   identical graphs share cache entries even when they come from different
   applications (e.g. copies of one application in a multi-app workload).
   Encoded with the engine's packer: every field a varint, counts included
   up front, so equal keys decode to equal inputs (injectivity). *)
let cache_key ?(max_states = 2_000_000) g exec_times =
  let p = Engine.Pack.create ~initial:64 () in
  Engine.Pack.add_uint p (Sdfg.num_actors g);
  Engine.Pack.add_uint p (Sdfg.num_channels g);
  Array.iter
    (fun c ->
      Engine.Pack.add_uint p c.Sdfg.src;
      Engine.Pack.add_uint p c.Sdfg.dst;
      Engine.Pack.add_uint p c.Sdfg.prod;
      Engine.Pack.add_uint p c.Sdfg.cons;
      Engine.Pack.add_uint p c.Sdfg.tokens)
    (Sdfg.channels g);
  Array.iter (fun tau -> Engine.Pack.add_int p tau) exec_times;
  Engine.Pack.add_uint p max_states;
  Engine.Pack.contents p

(* Negative outcomes are part of the analysis result, so they are cached
   too, reified as values and replayed as exceptions on a hit. *)
type outcome = Res of result | Dead | Exceeded of int

let cache : outcome Memo.t = Memo.create ~name:"selftimed" ()

let analyze ?observer ?(max_states = 2_000_000) g exec_times =
  match observer with
  | Some _ ->
      (* An observer sees every firing of the transient and periodic
         phases; a cached result cannot replay them. *)
      analyze_uncached ?observer ~max_states g exec_times
  | None -> (
      (* Validation errors are caller bugs, not analysis outcomes: raise
         them before touching the cache. *)
      validate g exec_times;
      let key = cache_key ~max_states g exec_times in
      let outcome =
        Memo.find_or_compute cache ~key (fun () ->
            match analyze_uncached ~max_states g exec_times with
            | r -> Res r
            | exception Deadlocked -> Dead
            | exception State_space_exceeded n -> Exceeded n)
      in
      match outcome with
      | Res r -> r
      | Dead -> raise Deadlocked
      | Exceeded n -> raise (State_space_exceeded n))

let analyze_budgeted ?observer ?(max_states = 2_000_000) ~budget g exec_times =
  match observer with
  | Some _ -> analyze_raw ?observer ~max_states ~budget g exec_times
  | None -> (
      validate g exec_times;
      let key = cache_key ~max_states g exec_times in
      (* Probe the cache first: a completed outcome from an earlier
         (possibly unbudgeted) run answers instantly and consumes no
         budget. On a miss, only completed outcomes are stored — a
         [Partial] reflects this run's budget, not the graph, and must
         never poison the cache. *)
      match Memo.find cache ~key with
      | Some (Res r) -> Ok r
      | Some Dead -> raise Deadlocked
      | Some (Exceeded n) -> raise (State_space_exceeded n)
      | None -> (
          match analyze_raw ~max_states ~budget g exec_times with
          | Ok r as ok ->
              Memo.add cache ~key (Res r);
              ok
          | Error _ as partial -> partial
          | exception Deadlocked ->
              Memo.add cache ~key Dead;
              raise Deadlocked
          | exception State_space_exceeded n ->
              Memo.add cache ~key (Exceeded n);
              raise (State_space_exceeded n)))

let throughput ?max_states g exec_times a =
  (analyze ?max_states g exec_times).throughput.(a)
