module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Repetition = Sdf.Repetition

type result = {
  throughput : Rat.t array;
  period : int;
  iterations_per_period : int;
  transient : int;
  states : int;
}

exception Deadlocked
exception State_space_exceeded of int

let validate g exec_times =
  let n = Sdfg.num_actors g in
  if n = 0 then invalid_arg "Selftimed.analyze: empty graph";
  if Array.length exec_times <> n then
    invalid_arg "Selftimed.analyze: exec_times length mismatch";
  Array.iter
    (fun t -> if t < 0 then invalid_arg "Selftimed.analyze: negative execution time")
    exec_times;
  for a = 0 to n - 1 do
    if Sdfg.in_channels g a = [] then
      invalid_arg
        (Printf.sprintf
           "Selftimed.analyze: actor %s has no input channel (unbounded \
            auto-concurrency)"
           (Sdfg.actor_name g a))
  done

(* The pre-engine exploration (sorted lists of remaining times, Marshal
   snapshots into a string-keyed Hashtbl), retained as the slow half of the
   differential oracle [diff.engine-vs-reference] and as the baseline of
   the exploration microbenchmark. Behaviour-defining: the packed engine
   below must agree with it on every input. *)
let analyze_reference ?observer ?(max_states = 2_000_000) g exec_times =
  validate g exec_times;
  let gamma = Repetition.vector_exn g in
  let n = Sdfg.num_actors g in
  let ops = Engine.Ops.of_graph g in
  let tokens = Array.map (fun c -> c.Sdfg.tokens) (Sdfg.channels g) in
  let active = Array.make n [] in
  let counts = Array.make n 0 in
  let time = ref 0 in
  let seen : (string, int * int array) Hashtbl.t = Hashtbl.create 4096 in
  (* Start every enabled firing; zero-time firings complete on the spot and
     may enable more starts, hence the fixpoint. The guard protects against
     zero-time livelock (a token-producing cycle of zero-time actors). *)
  let start_fixpoint () =
    let instant_guard = ref 0 in
    let progress = ref true in
    while !progress do
      progress := false;
      for a = 0 to n - 1 do
        while Engine.Ops.enabled ops tokens a do
          progress := true;
          incr instant_guard;
          if !instant_guard > 10_000_000 then
            invalid_arg "Selftimed.analyze: zero-time livelock";
          Engine.Ops.consume ops tokens a;
          counts.(a) <- counts.(a) + 1;
          (match observer with Some f -> f !time a | None -> ());
          if exec_times.(a) = 0 then Engine.Ops.produce ops tokens a
          else active.(a) <- Engine.Ops.insert_sorted exec_times.(a) active.(a)
        done
      done
    done
  in
  let snapshot () =
    Marshal.to_string (tokens, active) [ Marshal.No_sharing ]
  in
  let rec explore () =
    start_fixpoint ();
    let key = snapshot () in
    match Hashtbl.find_opt seen key with
    | Some (t0, counts0) ->
        let period = !time - t0 in
        let iterations = (counts.(0) - counts0.(0)) / gamma.(0) in
        assert (counts.(0) - counts0.(0) = iterations * gamma.(0));
        let throughput =
          Array.init n (fun a -> Rat.make (iterations * gamma.(a)) period)
        in
        {
          throughput;
          period;
          iterations_per_period = iterations;
          transient = t0;
          states = Hashtbl.length seen;
        }
    | None ->
        if Hashtbl.length seen >= max_states then
          raise (State_space_exceeded max_states);
        Hashtbl.add seen key (!time, Array.copy counts);
        (* Advance to the earliest completion. *)
        let dt =
          Array.fold_left
            (fun acc l -> match l with [] -> acc | r :: _ -> min acc r)
            max_int active
        in
        if dt = max_int then raise Deadlocked;
        time := !time + dt;
        for a = 0 to n - 1 do
          let rec settle = function
            | r :: rest when r = dt ->
                Engine.Ops.produce ops tokens a;
                settle rest
            | l -> List.map (fun r -> r - dt) l
          in
          active.(a) <- settle active.(a)
        done;
        explore ()
  in
  explore ()

(* The packed engine: states stream through one reusable {!Engine.Pack}
   writer (channel token counts, then per-actor length-prefixed rings of
   time-relative completions) into an open-addressing {!Engine.Stateset}
   whose payload words carry the recurrence data (visit time, firing count
   of actor 0) — no Marshal, no string keys, no per-state boxed values.
   Outstanding firings live in {!Engine.Rings} (FIFO: equal execution
   times make completion order follow start order). *)
let analyze_uncached ?observer ?(max_states = 2_000_000) g exec_times =
  validate g exec_times;
  let gamma = Repetition.vector_exn g in
  let n = Sdfg.num_actors g in
  let nc = Sdfg.num_channels g in
  let ops = Engine.Ops.of_graph g in
  let tokens = Array.map (fun c -> c.Sdfg.tokens) (Sdfg.channels g) in
  let rings = Engine.Rings.create n in
  let counts = Array.make n 0 in
  let time = ref 0 in
  let seen = Engine.Stateset.create () in
  let pack = Engine.Pack.create () in
  let produce_completed a = Engine.Ops.produce ops tokens a in
  let start_fixpoint () =
    let instant_guard = ref 0 in
    let progress = ref true in
    while !progress do
      progress := false;
      for a = 0 to n - 1 do
        while Engine.Ops.enabled ops tokens a do
          progress := true;
          incr instant_guard;
          if !instant_guard > 10_000_000 then
            invalid_arg "Selftimed.analyze: zero-time livelock";
          Engine.Ops.consume ops tokens a;
          counts.(a) <- counts.(a) + 1;
          (match observer with Some f -> f !time a | None -> ());
          if exec_times.(a) = 0 then Engine.Ops.produce ops tokens a
          else Engine.Rings.push rings a (!time + exec_times.(a))
        done
      done
    done
  in
  let pack_rel c = Engine.Pack.add_uint pack (c - !time) in
  let pack_state () =
    Engine.Pack.reset pack;
    for ci = 0 to nc - 1 do
      Engine.Pack.add_uint pack tokens.(ci)
    done;
    for a = 0 to n - 1 do
      Engine.Pack.add_uint pack (Engine.Rings.length rings a);
      Engine.Rings.iter rings a pack_rel
    done
  in
  (* Telemetry: recorded once per run (never inside the exploration loop),
     so disabled telemetry costs one branch per analysis. *)
  let record_metrics r =
    if Obs.enabled () then begin
      Obs.Counter.add "selftimed.runs" 1;
      Obs.Counter.add "selftimed.states" r.states;
      Obs.Counter.add "selftimed.transient" r.transient;
      Obs.Counter.add "selftimed.period" r.period;
      Obs.Counter.add "selftimed.firings" (Array.fold_left ( + ) 0 counts);
      let s = Engine.Stateset.stats seen in
      Obs.Gauge.set_int "engine.arena_bytes" s.Engine.Stateset.arena_bytes;
      Obs.Gauge.set "engine.bytes_per_state"
        (float_of_int s.Engine.Stateset.arena_bytes
        /. float_of_int (max 1 s.Engine.Stateset.states));
      Obs.Gauge.set "engine.occupancy"
        (float_of_int s.Engine.Stateset.states
        /. float_of_int (max 1 s.Engine.Stateset.slots));
      Obs.Gauge.set_int "engine.max_probe" s.Engine.Stateset.max_probe
    end;
    r
  in
  let rec explore () =
    start_fixpoint ();
    pack_state ();
    let revisit, t0, c0 =
      Engine.Stateset.find_or_add seen pack ~p0:!time ~p1:counts.(0)
    in
    if revisit then begin
      let period = !time - t0 in
      let iterations = (counts.(0) - c0) / gamma.(0) in
      assert (counts.(0) - c0 = iterations * gamma.(0));
      let throughput =
        Array.init n (fun a -> Rat.make (iterations * gamma.(a)) period)
      in
      {
        throughput;
        period;
        iterations_per_period = iterations;
        transient = t0;
        states = Engine.Stateset.length seen;
      }
    end
    else begin
      (* The reference engine checks the cap before storing; the stateset
         stores first, so "stored one too many" is the same condition. *)
      if Engine.Stateset.length seen > max_states then
        raise (State_space_exceeded max_states);
      let next = Engine.Rings.min_head rings in
      if next = max_int then raise Deadlocked;
      time := next;
      Engine.Rings.pop_due rings ~now:next produce_completed;
      explore ()
    end
  in
  match explore () with
  | r -> record_metrics r
  | exception Deadlocked ->
      Obs.Counter.add "selftimed.deadlocks" 1;
      raise Deadlocked
  | exception State_space_exceeded n ->
      Obs.Counter.add "selftimed.cap_aborts" 1;
      raise (State_space_exceeded n)

(* The analysis depends only on the graph structure (channel endpoints,
   rates, initial tokens), the execution times and the state cap — never on
   actor or channel names. Leaving names out of the key makes structurally
   identical graphs share cache entries even when they come from different
   applications (e.g. copies of one application in a multi-app workload).
   Encoded with the engine's packer: every field a varint, counts included
   up front, so equal keys decode to equal inputs (injectivity). *)
let cache_key ?(max_states = 2_000_000) g exec_times =
  let p = Engine.Pack.create ~initial:64 () in
  Engine.Pack.add_uint p (Sdfg.num_actors g);
  Engine.Pack.add_uint p (Sdfg.num_channels g);
  Array.iter
    (fun c ->
      Engine.Pack.add_uint p c.Sdfg.src;
      Engine.Pack.add_uint p c.Sdfg.dst;
      Engine.Pack.add_uint p c.Sdfg.prod;
      Engine.Pack.add_uint p c.Sdfg.cons;
      Engine.Pack.add_uint p c.Sdfg.tokens)
    (Sdfg.channels g);
  Array.iter (fun tau -> Engine.Pack.add_int p tau) exec_times;
  Engine.Pack.add_uint p max_states;
  Engine.Pack.contents p

(* Negative outcomes are part of the analysis result, so they are cached
   too, reified as values and replayed as exceptions on a hit. *)
type outcome = Res of result | Dead | Exceeded of int

let cache : outcome Memo.t = Memo.create ~name:"selftimed" ()

let analyze ?observer ?(max_states = 2_000_000) g exec_times =
  match observer with
  | Some _ ->
      (* An observer sees every firing of the transient and periodic
         phases; a cached result cannot replay them. *)
      analyze_uncached ?observer ~max_states g exec_times
  | None -> (
      (* Validation errors are caller bugs, not analysis outcomes: raise
         them before touching the cache. *)
      validate g exec_times;
      let key = cache_key ~max_states g exec_times in
      let outcome =
        Memo.find_or_compute cache ~key (fun () ->
            match analyze_uncached ~max_states g exec_times with
            | r -> Res r
            | exception Deadlocked -> Dead
            | exception State_space_exceeded n -> Exceeded n)
      in
      match outcome with
      | Res r -> r
      | Dead -> raise Deadlocked
      | Exceeded n -> raise (State_space_exceeded n))

let throughput ?max_states g exec_times a =
  (analyze ?max_states g exec_times).throughput.(a)
