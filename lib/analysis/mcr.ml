module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Repetition = Sdf.Repetition

type outcome = Acyclic | Zero_token_cycle of int list | Ratio of Rat.t

let neg_inf = min_int / 4

(* Topological order of the token-free subgraph, or a witness cycle.
   Kahn's algorithm on the actors, using only channels without tokens. *)
let zero_subgraph_order g =
  let n = Sdfg.num_actors g in
  let indeg = Array.make n 0 in
  let zero_out = Array.make n [] in
  Array.iter
    (fun c ->
      if c.Sdfg.tokens = 0 then begin
        indeg.(c.Sdfg.dst) <- indeg.(c.Sdfg.dst) + 1;
        zero_out.(c.Sdfg.src) <- c.Sdfg.c_idx :: zero_out.(c.Sdfg.src)
      end)
    (Sdfg.channels g);
  let queue = Queue.create () in
  for a = 0 to n - 1 do
    if indeg.(a) = 0 then Queue.add a queue
  done;
  let order = ref [] in
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let a = Queue.pop queue in
    incr processed;
    order := a :: !order;
    List.iter
      (fun ci ->
        let d = (Sdfg.channel g ci).Sdfg.dst in
        indeg.(d) <- indeg.(d) - 1;
        if indeg.(d) = 0 then Queue.add d queue)
      zero_out.(a)
  done;
  if !processed = n then Ok (List.rev !order, zero_out)
  else begin
    (* Extract a zero-token cycle among the unprocessed actors. *)
    let in_cycle_region a = indeg.(a) > 0 in
    let start = ref (-1) in
    for a = n - 1 downto 0 do
      if in_cycle_region a then start := a
    done;
    (* Walk forward along zero-token channels inside the region until an
       actor repeats; the cycle is the suffix of the walk starting at the
       repeated actor. Each path entry records the channel and the actor it
       leaves from. *)
    let rec walk a path_rev seen =
      if List.mem a seen then begin
        let rec drop = function
          | (from, _) :: _ as l when from = a -> List.map snd l
          | _ :: rest -> drop rest
          | [] -> assert false
        in
        drop (List.rev path_rev)
      end
      else begin
        let ci =
          List.find
            (fun ci -> in_cycle_region (Sdfg.channel g ci).Sdfg.dst)
            zero_out.(a)
        in
        walk (Sdfg.channel g ci).Sdfg.dst ((a, ci) :: path_rev) (a :: seen)
      end
    in
    Error (walk !start [] [])
  end

(* Karp's maximum cycle mean on an explicit digraph given as arc lists.
   Returns None when the (sub)graph has no cycle reachable from node 0. *)
let karp_mcm nodes arcs =
  let m = nodes in
  if m = 0 then None
  else begin
    let out = Array.make m [] in
    List.iter (fun (u, v, w) -> out.(u) <- (v, w) :: out.(u)) arcs;
    let d = Array.make_matrix (m + 1) m neg_inf in
    d.(0).(0) <- 0;
    for k = 0 to m - 1 do
      for u = 0 to m - 1 do
        if d.(k).(u) > neg_inf then
          List.iter
            (fun (v, w) ->
              if d.(k).(u) + w > d.(k + 1).(v) then
                d.(k + 1).(v) <- d.(k).(u) + w)
            out.(u)
      done
    done;
    let best = ref None in
    for v = 0 to m - 1 do
      if d.(m).(v) > neg_inf then begin
        let worst = ref None in
        for k = 0 to m - 1 do
          if d.(k).(v) > neg_inf then begin
            let r = Rat.make (d.(m).(v) - d.(k).(v)) (m - k) in
            match !worst with
            | Some w when Rat.compare w r <= 0 -> ()
            | _ -> worst := Some r
          end
        done;
        match (!best, !worst) with
        | _, None -> ()
        | Some b, Some w when Rat.compare b w >= 0 -> ()
        | _, Some w -> best := Some w
      end
    done;
    !best
  end

(* Strongly connected components of an explicit digraph (Tarjan, iterative). *)
let explicit_sccs nodes arcs =
  let out = Array.make nodes [] in
  List.iter (fun (u, v, _) -> out.(u) <- v :: out.(u)) arcs;
  let index = Array.make nodes (-1) in
  let lowlink = Array.make nodes 0 in
  let on_stack = Array.make nodes false in
  let stack = ref [] in
  let next = ref 0 in
  let comp = Array.make nodes (-1) in
  let ncomp = ref 0 in
  for root = 0 to nodes - 1 do
    if index.(root) = -1 then begin
      let work = ref [] in
      let push v =
        index.(v) <- !next;
        lowlink.(v) <- !next;
        incr next;
        stack := v :: !stack;
        on_stack.(v) <- true;
        work := (v, out.(v)) :: !work
      in
      push root;
      let rec loop () =
        match !work with
        | [] -> ()
        | (u, []) :: rest ->
            work := rest;
            (match rest with
            | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(u)
            | [] -> ());
            if lowlink.(u) = index.(u) then begin
              let rec pop () =
                match !stack with
                | w :: tl ->
                    stack := tl;
                    on_stack.(w) <- false;
                    comp.(w) <- !ncomp;
                    if w <> u then pop ()
                | [] -> assert false
              in
              pop ();
              incr ncomp
            end;
            loop ()
        | (u, v :: vs) :: rest ->
            work := (u, vs) :: rest;
            if index.(v) = -1 then push v
            else if on_stack.(v) then lowlink.(u) <- min lowlink.(u) index.(v);
            loop ()
      in
      loop ()
    end
  done;
  (comp, !ncomp)

let max_cycle_ratio g exec_times =
  match zero_subgraph_order g with
  | Error cycle -> Zero_token_cycle cycle
  | Ok (topo, zero_out) ->
      let token_channels =
        Array.to_list (Sdfg.channels g)
        |> List.filter (fun c -> c.Sdfg.tokens > 0)
      in
      if token_channels = [] then Acyclic
      else begin
        (* Node numbering in the token graph: channel c with k tokens owns a
           chain of k nodes; [first_node] maps the channel to the chain head. *)
        let first_node = Hashtbl.create 16 in
        let nodes = ref 0 in
        List.iter
          (fun c ->
            Hashtbl.add first_node c.Sdfg.c_idx !nodes;
            nodes := !nodes + c.Sdfg.tokens)
          token_channels;
        let arcs = ref [] in
        List.iter
          (fun c ->
            let base = Hashtbl.find first_node c.Sdfg.c_idx in
            for i = 0 to c.Sdfg.tokens - 2 do
              arcs := (base + i, base + i + 1, 0) :: !arcs
            done)
          token_channels;
        (* Longest actor-time path from dst(c1) through the token-free DAG;
           L.(u) includes the execution times of both endpoints. *)
        let n = Sdfg.num_actors g in
        List.iter
          (fun c1 ->
            let l = Array.make n neg_inf in
            let v0 = c1.Sdfg.dst in
            l.(v0) <- exec_times.(v0);
            List.iter
              (fun u ->
                if l.(u) > neg_inf then
                  List.iter
                    (fun ci ->
                      let d = (Sdfg.channel g ci).Sdfg.dst in
                      let cand = l.(u) + exec_times.(d) in
                      if cand > l.(d) then l.(d) <- cand)
                    zero_out.(u))
              topo;
            let tail = Hashtbl.find first_node c1.Sdfg.c_idx + c1.Sdfg.tokens - 1 in
            List.iter
              (fun c2 ->
                if l.(c2.Sdfg.src) > neg_inf then
                  arcs :=
                    (tail, Hashtbl.find first_node c2.Sdfg.c_idx, l.(c2.Sdfg.src))
                    :: !arcs)
              token_channels)
          token_channels;
        let arcs = !arcs in
        let comp, ncomp = explicit_sccs !nodes arcs in
        (* Run Karp inside each SCC. Renumbering is a single bucket pass:
           one sweep over the nodes assigns local indices and component
           sizes, one sweep over the arcs distributes them to their
           component — O(V + A) total, where the per-component
           [List.filter] over all nodes plus per-arc [Hashtbl] lookups it
           replaces were O(V * C + A * C). *)
        let local = Array.make !nodes 0 in
        let sizes = Array.make ncomp 0 in
        for v = 0 to !nodes - 1 do
          let c = comp.(v) in
          local.(v) <- sizes.(c);
          sizes.(c) <- sizes.(c) + 1
        done;
        let comp_arcs = Array.make ncomp [] in
        List.iter
          (fun (u, v, w) ->
            let c = comp.(u) in
            if comp.(v) = c then
              comp_arcs.(c) <- (local.(u), local.(v), w) :: comp_arcs.(c))
          arcs;
        let best = ref None in
        for ci = 0 to ncomp - 1 do
          if comp_arcs.(ci) <> [] then
            match karp_mcm sizes.(ci) comp_arcs.(ci) with
            | None -> ()
            | Some r -> (
                match !best with
                | Some b when Rat.compare b r >= 0 -> ()
                | _ -> best := Some r)
        done;
        match !best with None -> Acyclic | Some r -> Ratio r
      end

let hsdf_throughput h exec_times =
  match max_cycle_ratio h exec_times with
  | Acyclic -> Rat.infinity
  | Zero_token_cycle _ -> invalid_arg "Mcr.hsdf_throughput: graph deadlocks"
  | Ratio r ->
      if Rat.equal r Rat.zero then Rat.infinity else Rat.inv r
