let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let hits_total = Obs.Counter.make "cache.hits"
let misses_total = Obs.Counter.make "cache.misses"
let evictions_total = Obs.Counter.make "cache.evictions"

(* Latency of the locked table lookup itself (not the computation on a
   miss): its tail is the contention signal for the shared-mutex design. *)
let lookup_hist = Obs.Histogram.make "cache.lookup_s"

(* Every entry carries the logical time of its last touch; eviction drops
   the oldest-touched entries. The clock is a per-table counter bumped
   under the table mutex, so stamps are totally ordered within a table. *)
type 'v entry = { value : 'v; mutable stamp : int }

type 'v t = {
  tbl : (string, 'v entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable max_entries : int;
  mutable tick : int;
  hits : Obs.Counter.t;
  misses : Obs.Counter.t;
  evictions : Obs.Counter.t;
}

(* Heterogeneous registry for [clear_all] / [set_capacity_all]: each table
   contributes closures over its own type parameter. *)
type registered = { r_clear : unit -> unit; r_set_capacity : int -> unit }

let registry : registered list ref = ref []
let registry_mutex = Mutex.create ()

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.tbl;
  Mutex.unlock t.mutex

let clear_all () =
  Mutex.lock registry_mutex;
  let regs = !registry in
  Mutex.unlock registry_mutex;
  List.iter (fun r -> r.r_clear ()) regs

(* Under the table mutex: drop least-recently-used entries until at most
   [keep] remain. One sweep is O(n log n), so the insert path evicts a
   batch (an eighth of the capacity, at least one entry) rather than a
   single entry — a table sitting at its cap pays the sweep once per
   batch, not once per miss. *)
let evict_locked t ~keep =
  let n = Hashtbl.length t.tbl in
  if n > keep then begin
    let stamps = Array.make n ("", 0) in
    let i = ref 0 in
    Hashtbl.iter
      (fun k e ->
        stamps.(!i) <- (k, e.stamp);
        incr i)
      t.tbl;
    Array.sort (fun (_, a) (_, b) -> compare (a : int) b) stamps;
    let drop = n - keep in
    for j = 0 to drop - 1 do
      Hashtbl.remove t.tbl (fst stamps.(j))
    done;
    Obs.Counter.incr ~by:drop t.evictions;
    Obs.Counter.incr ~by:drop evictions_total
  end

(* Room for one insert: evict down to capacity minus the batch. *)
let make_room_locked t =
  if Hashtbl.length t.tbl >= t.max_entries then
    evict_locked t ~keep:(t.max_entries - 1 - (t.max_entries / 8))

let set_capacity t n =
  let n = max 1 n in
  Mutex.lock t.mutex;
  t.max_entries <- n;
  evict_locked t ~keep:n;
  Mutex.unlock t.mutex

let capacity t = t.max_entries

let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mutex;
  n

let set_capacity_all n =
  Mutex.lock registry_mutex;
  let regs = !registry in
  Mutex.unlock registry_mutex;
  List.iter (fun r -> r.r_set_capacity n) regs

let create ~name ?(max_entries = 65_536) () =
  let t =
    {
      tbl = Hashtbl.create 1024;
      mutex = Mutex.create ();
      max_entries = max 1 max_entries;
      tick = 0;
      hits = Obs.Counter.make (Printf.sprintf "cache.%s.hits" name);
      misses = Obs.Counter.make (Printf.sprintf "cache.%s.misses" name);
      evictions = Obs.Counter.make (Printf.sprintf "cache.%s.evictions" name);
    }
  in
  Mutex.lock registry_mutex;
  registry :=
    { r_clear = (fun () -> clear t); r_set_capacity = (fun n -> set_capacity t n) }
    :: !registry;
  Mutex.unlock registry_mutex;
  t

(* A hit refreshes the entry's stamp: recently answered keys survive the
   next eviction sweep. *)
let locked_find t key =
  Mutex.lock t.mutex;
  let cached =
    match Hashtbl.find_opt t.tbl key with
    | None -> None
    | Some e ->
        t.tick <- t.tick + 1;
        e.stamp <- t.tick;
        Some e.value
  in
  Mutex.unlock t.mutex;
  cached

let locked_add t key v =
  Mutex.lock t.mutex;
  make_room_locked t;
  t.tick <- t.tick + 1;
  Hashtbl.replace t.tbl key { value = v; stamp = t.tick };
  Mutex.unlock t.mutex

let find t ~key =
  if not !enabled_flag then None
  else begin
    let cached =
      Obs.Histogram.time lookup_hist (fun () -> locked_find t key)
    in
    (match cached with
    | Some _ ->
        Obs.Counter.incr t.hits;
        Obs.Counter.incr hits_total
    | None ->
        Obs.Counter.incr t.misses;
        Obs.Counter.incr misses_total);
    cached
  end

let add t ~key v = if !enabled_flag then locked_add t key v

let find_or_compute t ~key f =
  if not !enabled_flag then f ()
  else begin
    let cached =
      Obs.Histogram.time lookup_hist (fun () -> locked_find t key)
    in
    match cached with
    | Some v ->
        Obs.Counter.incr t.hits;
        Obs.Counter.incr hits_total;
        v
    | None ->
        (* Compute outside the lock: sibling domains missing on other keys
           (or even this one) must not serialise on the analysis itself. *)
        let v = f () in
        locked_add t key v;
        Obs.Counter.incr t.misses;
        Obs.Counter.incr misses_total;
        v
  end
