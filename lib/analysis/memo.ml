let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let hits_total = Obs.Counter.make "cache.hits"
let misses_total = Obs.Counter.make "cache.misses"
let evictions_total = Obs.Counter.make "cache.evictions"

(* Latency of the locked table lookup itself (not the computation on a
   miss): its tail is the contention signal for the shared-mutex design. *)
let lookup_hist = Obs.Histogram.make "cache.lookup_s"

type 'v t = {
  tbl : (string, 'v) Hashtbl.t;
  mutex : Mutex.t;
  max_entries : int;
  hits : Obs.Counter.t;
  misses : Obs.Counter.t;
}

(* Heterogeneous registry for [clear_all]: each table contributes its own
   clearing closure. *)
let registry : (unit -> unit) list ref = ref []
let registry_mutex = Mutex.create ()

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.tbl;
  Mutex.unlock t.mutex

let clear_all () =
  Mutex.lock registry_mutex;
  let clears = !registry in
  Mutex.unlock registry_mutex;
  List.iter (fun f -> f ()) clears

let create ~name ?(max_entries = 65_536) () =
  let t =
    {
      tbl = Hashtbl.create 1024;
      mutex = Mutex.create ();
      max_entries;
      hits = Obs.Counter.make (Printf.sprintf "cache.%s.hits" name);
      misses = Obs.Counter.make (Printf.sprintf "cache.%s.misses" name);
    }
  in
  Mutex.lock registry_mutex;
  registry := (fun () -> clear t) :: !registry;
  Mutex.unlock registry_mutex;
  t

let locked_find t key =
  Mutex.lock t.mutex;
  let cached = Hashtbl.find_opt t.tbl key in
  Mutex.unlock t.mutex;
  cached

let find t ~key =
  if not !enabled_flag then None
  else begin
    let cached =
      Obs.Histogram.time lookup_hist (fun () -> locked_find t key)
    in
    (match cached with
    | Some _ ->
        Obs.Counter.incr t.hits;
        Obs.Counter.incr hits_total
    | None ->
        Obs.Counter.incr t.misses;
        Obs.Counter.incr misses_total);
    cached
  end

let add t ~key v =
  if !enabled_flag then begin
    Mutex.lock t.mutex;
    if Hashtbl.length t.tbl >= t.max_entries then begin
      Hashtbl.reset t.tbl;
      Obs.Counter.incr evictions_total
    end;
    Hashtbl.replace t.tbl key v;
    Mutex.unlock t.mutex
  end

let find_or_compute t ~key f =
  if not !enabled_flag then f ()
  else begin
    let cached =
      Obs.Histogram.time lookup_hist (fun () -> locked_find t key)
    in
    match cached with
    | Some v ->
        Obs.Counter.incr t.hits;
        Obs.Counter.incr hits_total;
        v
    | None ->
        (* Compute outside the lock: sibling domains missing on other keys
           (or even this one) must not serialise on the analysis itself. *)
        let v = f () in
        Mutex.lock t.mutex;
        if Hashtbl.length t.tbl >= t.max_entries then begin
          Hashtbl.reset t.tbl;
          Obs.Counter.incr evictions_total
        end;
        Hashtbl.replace t.tbl key v;
        Mutex.unlock t.mutex;
        Obs.Counter.incr t.misses;
        Obs.Counter.incr misses_total;
        v
  end
