module Sdfg := Sdf.Sdfg

(** Scenario FSMs over one SDFG topology (after Skelin/Geilen's
    scenario-aware dataflow and Jung/Oh/Ha's multi-mode scheduling).

    A scenario FSM is a finite automaton whose states are {e modes} of one
    shared graph topology: every mode keeps the actors, channels and
    initial-token distribution of the base graph but carries its own
    per-channel rates and per-actor execution times. An infinite run of
    the automaton is a {e scenario sequence}; each visit to a mode
    executes exactly one iteration of the graph under that mode's rates
    and times (consistency restores the token distribution, so mode
    switches compose). A transition carries a {e mode-transition delay}:
    the occupancy-holding rebinding cost of reconfiguring the platform,
    which holds every token back until the outgoing occupancy has drained
    (see {!Product} for the exact semantics).

    Worst-case throughput over all scenario sequences is computed by
    {!Product.analyze}. *)

type mode = {
  m_name : string;
  rates : (int * int) array;
      (** per channel, aligned with the base graph: (prod, cons) *)
  taus : int array;  (** per actor: execution time in this mode *)
}

type transition = {
  t_src : int;  (** mode index *)
  t_dst : int;  (** mode index *)
  delay : int;  (** occupancy-holding rebinding cost, [>= 0] *)
}

type t = private {
  name : string;
  graph : Sdfg.t;  (** the shared topology, with the initial tokens *)
  modes : mode array;
  transitions : transition array;
  initial : int;  (** starting mode *)
  gamma : int array array;  (** per mode: its repetition vector *)
  out : (int * int) array array;
      (** per mode: outgoing [(dst, delay)] pairs, in declaration order *)
}

val make :
  name:string ->
  graph:Sdfg.t ->
  modes:mode array ->
  transitions:transition array ->
  initial:int ->
  t
(** Validates and freezes a scenario FSM: at least one mode, unique mode
    names, array lengths matching the topology, positive rates,
    non-negative times and delays, in-range transition endpoints, every
    mode with at least one outgoing transition (runs are infinite), every
    actor with at least one input channel, and every mode individually
    consistent and connected (each mode's repetition vector is computed
    here and cached in [gamma]).
    @raise Invalid_argument when any of it fails. *)

val single : ?name:string -> Sdfg.t -> int array -> t
(** [single g taus] is the one-mode FSM: the base graph's own rates and
    the given execution times, with a single zero-delay self-loop — the
    scenario view of a plain self-timed execution, and {!Product.analyze}
    on it agrees exactly with [Analysis.Selftimed.analyze]. *)

val mode_graph : t -> int -> Sdfg.t
(** The base topology with mode [m]'s rates substituted (names and
    initial tokens preserved). *)

exception Parse_error of { line : int; message : string }

val parse : graph:Sdfg.t -> taus:int array -> ?name:string -> string -> t
(** Parse the scenario text format against a base graph and its baseline
    execution times:
    {v
    scenario NAME
    mode M1
      actor a2 7          # execution time of a2 in M1
      channel d1 rates 2 1
    mode M2
    initial M1
    edge M1 -> M2 delay 4
    edge M2 -> M1
    v}
    Unlisted actors keep the baseline time, unlisted channels the base
    rates; [delay] defaults to 0, [initial] to the first mode. When no
    [edge] line is given and there is exactly one mode, a zero-delay
    self-loop is added. [#] starts a comment.
    @raise Parse_error on malformed input, unknown names or a failed
    {!make} validation (reported at the offending line when known). *)

val parse_file : graph:Sdfg.t -> taus:int array -> string -> t
(** {!parse} on a file's contents, named after the scenario header. *)

val to_text : t -> string
(** Canonical text form (every actor, channel and edge explicit);
    [parse]d back against the same base graph it yields an identical
    FSM. *)
