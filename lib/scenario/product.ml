module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat

type result = {
  worst_rate : Rat.t;
  product_states : int;
  product_edges : int;
}

type partial = { reason : Budget.reason; explored : int; upper_bound : Rat.t }

exception Deadlocked
exception State_space_exceeded of int

exception Budget_hit of Budget.reason
(* Internal: unwinds the BFS when the budget runs out. *)

(* ------------------------------------------------------------------ *)
(* One mode occurrence in token-timestamp semantics. A channel is the
   ascending list of its tokens' ready times; a firing starts at the max
   over its input channels of the cons-th earliest ready time, consumes
   those tokens, and produces tokens ready at start + tau. The iteration
   fires actor [a] exactly [gamma m a] times. The result is evaluation-
   order independent (Kahn determinism): every channel has one producer
   and one consumer, consumption always takes the earliest tokens of the
   final multiset, and start times are monotone in the consumed ready
   times — so the actor-scan fixpoint below computes the unique least
   solution, auto-concurrency included (several firings of one actor may
   overlap unless a self-loop serializes them). *)

let simulate (fsm : Fsm.t) m (queues : int list array) =
  let g = fsm.Fsm.graph in
  let n = Sdfg.num_actors g in
  let md = fsm.Fsm.modes.(m) in
  let q = Array.copy queues in
  let qlen = Array.map List.length q in
  let remaining = Array.copy fsm.Fsm.gamma.(m) in
  let total = ref (Array.fold_left ( + ) 0 remaining) in
  let fmax = ref 0 in
  let rec nth_ready l k =
    match l with
    | x :: _ when k = 1 -> x
    | _ :: tl -> nth_ready tl (k - 1)
    | [] -> assert false
  in
  let rec drop l k =
    if k = 0 then l
    else match l with _ :: tl -> drop tl (k - 1) | [] -> assert false
  in
  let enabled a =
    List.for_all
      (fun ci -> qlen.(ci) >= snd md.Fsm.rates.(ci))
      (Sdfg.in_channels g a)
  in
  let fire a =
    let start =
      List.fold_left
        (fun acc ci -> max acc (nth_ready q.(ci) (snd md.Fsm.rates.(ci))))
        0 (Sdfg.in_channels g a)
    in
    List.iter
      (fun ci ->
        let cons = snd md.Fsm.rates.(ci) in
        q.(ci) <- drop q.(ci) cons;
        qlen.(ci) <- qlen.(ci) - cons)
      (Sdfg.in_channels g a);
    let fin = start + md.Fsm.taus.(a) in
    if fin > !fmax then fmax := fin;
    List.iter
      (fun ci ->
        let prod = fst md.Fsm.rates.(ci) in
        for _ = 1 to prod do
          q.(ci) <- Engine.Ops.insert_sorted fin q.(ci)
        done;
        qlen.(ci) <- qlen.(ci) + prod)
      (Sdfg.out_channels g a)
  in
  let progress = ref true in
  while !total > 0 && !progress do
    progress := false;
    for a = 0 to n - 1 do
      while remaining.(a) > 0 && enabled a do
        progress := true;
        fire a;
        remaining.(a) <- remaining.(a) - 1;
        decr total
      done
    done
  done;
  if !total > 0 then raise Deadlocked;
  (q, !fmax)

(* Delay [d > 0] holds every token back to [f + d] (occupancy drained at
   [f], reconfiguration for [d]); [d = 0] is a seamless pipelined switch.
   The clamp is monotone, so ascending lists stay ascending. *)
let clamp d f queues =
  if d = 0 then queues
  else
    let floor_t = f + d in
    Array.map (List.map (fun ts -> if ts < floor_t then floor_t else ts)) queues

(* Shift the time frame so the earliest token sits at 0; the shift is the
   edge weight (real elapsed time is the drift of the frame, summed over
   a cycle it is exactly the cycle's duration). *)
let normalize queues =
  let m =
    Array.fold_left (fun acc l -> List.fold_left min acc l) max_int queues
  in
  if m = max_int || m = 0 then (queues, 0)
  else (Array.map (List.map (fun ts -> ts - m)) queues, m)

(* ------------------------------------------------------------------ *)
(* Maximum cycle mean of the explored product digraph: Kosaraju SCCs,
   then Karp's theorem per non-trivial SCC. Karp needs D_k(v) for every
   k; rather than O(V^2) memory for all rows, the rows are computed
   twice — once keeping only D_N, once replaying k = 0..N-1 while
   folding the per-vertex min of (D_N(v) - D_k(v)) / (N - k) — for O(V)
   memory at twice the O(V·E) time. Means are compared exactly by cross
   multiplication. *)

let neg_inf = min_int

let sccs n adj radj =
  let visited = Array.make n false in
  let order = Array.make n 0 in
  let onum = ref 0 in
  for s = 0 to n - 1 do
    if not visited.(s) then begin
      visited.(s) <- true;
      let stack = ref [ (s, ref adj.(s)) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (v, rest) :: tl -> (
            match !rest with
            | [] ->
                order.(!onum) <- v;
                incr onum;
                stack := tl
            | u :: more ->
                rest := more;
                if not visited.(u) then begin
                  visited.(u) <- true;
                  stack := (u, ref adj.(u)) :: !stack
                end)
      done
    end
  done;
  let comp = Array.make n (-1) in
  let ncomp = ref 0 in
  for i = n - 1 downto 0 do
    let s = order.(i) in
    if comp.(s) < 0 then begin
      let c = !ncomp in
      incr ncomp;
      comp.(s) <- c;
      let stack = ref [ s ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: tl ->
            stack := tl;
            List.iter
              (fun u ->
                if comp.(u) < 0 then begin
                  comp.(u) <- c;
                  stack := u :: !stack
                end)
              radj.(v)
      done
    end
  done;
  (comp, !ncomp)

(* [max_cycle_mean n esrc edst ew] is [Some (num, den)] — the maximum
   over cycles of (total weight / length) — or [None] if acyclic. *)
let max_cycle_mean n esrc edst ew =
  let ne = Array.length esrc in
  if n = 0 || ne = 0 then None
  else begin
    let adj = Array.make n [] and radj = Array.make n [] in
    for i = ne - 1 downto 0 do
      adj.(esrc.(i)) <- edst.(i) :: adj.(esrc.(i));
      radj.(edst.(i)) <- esrc.(i) :: radj.(edst.(i))
    done;
    let comp, ncomp = sccs n adj radj in
    (* Bucket internal edges per component. *)
    let cedges = Array.make ncomp [] in
    let csize = Array.make ncomp 0 in
    Array.iteri (fun v c -> ignore v; csize.(c) <- csize.(c) + 1) comp;
    for i = 0 to ne - 1 do
      let c = comp.(esrc.(i)) in
      if comp.(edst.(i)) = c then cedges.(c) <- i :: cedges.(c)
    done;
    let loc = Array.make n (-1) in
    let best_num = ref 0 and best_den = ref 0 in
    (* best = num/den, den = 0 means "none yet" *)
    let consider num den =
      if !best_den = 0 || num * !best_den > !best_num * den then begin
        best_num := num;
        best_den := den
      end
    in
    for c = 0 to ncomp - 1 do
      let sz = csize.(c) in
      if cedges.(c) <> [] && (sz > 1 || cedges.(c) <> []) then begin
        (* Local numbering of the component's vertices. *)
        let verts = Array.make sz 0 in
        let k = ref 0 in
        for v = 0 to n - 1 do
          if comp.(v) = c then begin
            loc.(v) <- !k;
            verts.(!k) <- v;
            incr k
          end
        done;
        let es =
          List.rev_map
            (fun i -> (loc.(esrc.(i)), loc.(edst.(i)), ew.(i)))
            cedges.(c)
        in
        let relax src dst =
          List.iter
            (fun (u, v, w) ->
              if src.(u) <> neg_inf && src.(u) + w > dst.(v) then
                dst.(v) <- src.(u) + w)
            es
        in
        let d0 () =
          let d = Array.make sz neg_inf in
          d.(0) <- 0;
          d
        in
        (* Pass 1: D_N. *)
        let dn = ref (d0 ()) and tmp = ref (Array.make sz neg_inf) in
        for _ = 1 to sz do
          Array.fill !tmp 0 sz neg_inf;
          relax !dn !tmp;
          let t = !dn in
          dn := !tmp;
          tmp := t
        done;
        let dn = !dn in
        (* Pass 2: fold min_k (D_N(v) - D_k(v)) / (N - k) per vertex. *)
        let mnum = Array.make sz 0 and mden = Array.make sz 0 in
        let dk = ref (d0 ()) and tmp = ref (Array.make sz neg_inf) in
        for k = 0 to sz - 1 do
          for v = 0 to sz - 1 do
            if dn.(v) <> neg_inf && !dk.(v) <> neg_inf then begin
              let num = dn.(v) - !dk.(v) and den = sz - k in
              if mden.(v) = 0 || num * mden.(v) < mnum.(v) * den then begin
                mnum.(v) <- num;
                mden.(v) <- den
              end
            end
          done;
          Array.fill !tmp 0 sz neg_inf;
          relax !dk !tmp;
          let t = !dk in
          dk := !tmp;
          tmp := t
        done;
        for v = 0 to sz - 1 do
          if dn.(v) <> neg_inf && mden.(v) <> 0 then consider mnum.(v) mden.(v)
        done
      end
    done;
    if !best_den = 0 then None else Some (!best_num, !best_den)
  end

(* MCM (time per occurrence) to worst-case rate (occurrences per time).
   A zero-time maximum mean means every reachable cycle is instantaneous:
   the degenerate all-zero-times case, reported as an infinite rate. *)
let rate_of = function
  | None -> Rat.infinity
  | Some (num, _) when num = 0 -> Rat.infinity
  | Some (num, den) -> Rat.make den num

(* ------------------------------------------------------------------ *)

let analyze_raw ?(max_states = 200_000) ~budget (fsm : Fsm.t) =
  let g = fsm.Fsm.graph in
  let nc = Sdfg.num_channels g in
  let seen = Engine.Stateset.create () in
  let pack = Engine.Pack.create () in
  (* Product-state packing: the mode index, then every channel's ready
     times in ascending order — per-channel token counts are invariant
     (each occurrence is a complete iteration), so the layout is uniquely
     decodable against the FSM. *)
  let pack_state m queues =
    Engine.Pack.reset pack;
    Engine.Pack.add_uint pack m;
    for ci = 0 to nc - 1 do
      List.iter (fun ts -> Engine.Pack.add_uint pack ts) queues.(ci)
    done
  in
  let worklist = Queue.create () in
  let esrc = ref [] and edst = ref [] and ew = ref [] in
  let nedges = ref 0 in
  let add_state m queues =
    pack_state m queues;
    let fresh = Engine.Stateset.length seen in
    let revisit, id, _ = Engine.Stateset.find_or_add seen pack ~p0:fresh ~p1:0 in
    if not revisit then begin
      if Engine.Stateset.length seen > max_states then
        raise (State_space_exceeded max_states);
      if not (Budget.is_infinite budget) then begin
        let arena_bytes =
          if Budget.arena_limited budget then Engine.Stateset.arena_bytes seen
          else 0
        in
        match
          Budget.check budget ~states:(Engine.Stateset.length seen) ~arena_bytes
        with
        | Some reason -> raise (Budget_hit reason)
        | None -> ()
      end;
      Queue.add (id, m, queues) worklist
    end;
    id
  in
  let explored_rate () =
    rate_of
      (max_cycle_mean
         (Engine.Stateset.length seen)
         (Array.of_list !esrc) (Array.of_list !edst) (Array.of_list !ew))
  in
  let explore () =
    let initial_queues =
      Array.map
        (fun (c : Sdfg.channel) -> List.init c.Sdfg.tokens (fun _ -> 0))
        (Sdfg.channels g)
    in
    ignore (add_state fsm.Fsm.initial initial_queues : int);
    while not (Queue.is_empty worklist) do
      let id, m, queues = Queue.pop worklist in
      let queues', f = simulate fsm m queues in
      Array.iter
        (fun (dst, delay) ->
          let norm, shift = normalize (clamp delay f queues') in
          let sid = add_state dst norm in
          esrc := id :: !esrc;
          edst := sid :: !edst;
          ew := shift :: !ew;
          incr nedges)
        fsm.Fsm.out.(m)
    done
  in
  match explore () with
  | () ->
      let r =
        {
          worst_rate = explored_rate ();
          product_states = Engine.Stateset.length seen;
          product_edges = !nedges;
        }
      in
      if Obs.enabled () then begin
        Obs.Counter.add "scenario.runs" 1;
        Obs.Counter.add "scenario.modes" (Array.length fsm.Fsm.modes);
        Obs.Counter.add "scenario.product_states" r.product_states;
        Obs.Counter.add "scenario.product_edges" r.product_edges;
        Engine.Explore.record_gauges (Engine.Stateset.stats seen)
      end;
      Ok r
  | exception Deadlocked ->
      Obs.Counter.add "scenario.deadlocks" 1;
      raise Deadlocked
  | exception State_space_exceeded cap ->
      Obs.Counter.add "scenario.cap_aborts" 1;
      raise (State_space_exceeded cap)
  | exception Budget_hit reason ->
      if Obs.enabled () then begin
        Obs.Counter.add "budget.partials" 1;
        Obs.Counter.add ("budget." ^ Budget.reason_label reason) 1
      end;
      Obs.Trace.instant "budget.trip"
        ~args:
          [
            ("reason", Obs.Event.String (Budget.reason_label reason));
            ("states", Obs.Event.Int (Engine.Stateset.length seen));
          ];
      (* Sound upper bound: every cycle already explored can be ridden
         forever by an adversarial scenario sequence, so the best rate
         over the explored cycles dominates the true worst case. *)
      Error
        {
          reason;
          explored = Engine.Stateset.length seen;
          upper_bound = explored_rate ();
        }

(* Structural memo key, mirroring [Selftimed.cache_key]: mode and actor
   names excluded, every count up front, one varint per field. *)
let cache_key ?(max_states = 200_000) (fsm : Fsm.t) =
  let g = fsm.Fsm.graph in
  let p = Engine.Pack.create ~initial:128 () in
  Engine.Pack.add_uint p (Sdfg.num_actors g);
  Engine.Pack.add_uint p (Sdfg.num_channels g);
  Array.iter
    (fun (c : Sdfg.channel) ->
      Engine.Pack.add_uint p c.Sdfg.src;
      Engine.Pack.add_uint p c.Sdfg.dst;
      Engine.Pack.add_uint p c.Sdfg.tokens)
    (Sdfg.channels g);
  Engine.Pack.add_uint p (Array.length fsm.Fsm.modes);
  Array.iter
    (fun (m : Fsm.mode) ->
      Array.iter
        (fun (prod, cons) ->
          Engine.Pack.add_uint p prod;
          Engine.Pack.add_uint p cons)
        m.Fsm.rates;
      Array.iter (fun tau -> Engine.Pack.add_int p tau) m.Fsm.taus)
    fsm.Fsm.modes;
  Engine.Pack.add_uint p (Array.length fsm.Fsm.transitions);
  Array.iter
    (fun (tr : Fsm.transition) ->
      Engine.Pack.add_uint p tr.Fsm.t_src;
      Engine.Pack.add_uint p tr.Fsm.t_dst;
      Engine.Pack.add_uint p tr.Fsm.delay)
    fsm.Fsm.transitions;
  Engine.Pack.add_uint p fsm.Fsm.initial;
  Engine.Pack.add_uint p max_states;
  Engine.Pack.contents p

type outcome = Res of result | Dead | Exceeded of int

let cache : outcome Analysis.Memo.t = Analysis.Memo.create ~name:"scenario" ()

let analyze ?(max_states = 200_000) fsm =
  let key = cache_key ~max_states fsm in
  let outcome =
    Analysis.Memo.find_or_compute cache ~key (fun () ->
        match analyze_raw ~max_states ~budget:Budget.infinite fsm with
        | Ok r -> Res r
        | Error _ -> assert false (* an infinite budget is never exhausted *)
        | exception Deadlocked -> Dead
        | exception State_space_exceeded n -> Exceeded n)
  in
  match outcome with
  | Res r -> r
  | Dead -> raise Deadlocked
  | Exceeded n -> raise (State_space_exceeded n)

let analyze_budgeted ?(max_states = 200_000) ~budget fsm =
  let key = cache_key ~max_states fsm in
  (* Completed outcomes answer from the cache without spending budget;
     partials reflect this run's budget, never the FSM, and are not
     stored. *)
  match Analysis.Memo.find cache ~key with
  | Some (Res r) -> Ok r
  | Some Dead -> raise Deadlocked
  | Some (Exceeded n) -> raise (State_space_exceeded n)
  | None -> (
      match analyze_raw ~max_states ~budget fsm with
      | Ok r as ok ->
          Analysis.Memo.add cache ~key (Res r);
          ok
      | Error _ as partial -> partial
      | exception Deadlocked ->
          Analysis.Memo.add cache ~key Dead;
          raise Deadlocked
      | exception State_space_exceeded n ->
          Analysis.Memo.add cache ~key (Exceeded n);
          raise (State_space_exceeded n))
