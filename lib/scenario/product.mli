(** Worst-case throughput of a scenario FSM by product-state-space
    exploration.

    {b Semantics.} A channel's state is the multiset of its tokens'
    {e ready times}. A mode occurrence executes exactly one iteration of
    the graph under the mode's rates and times, in token-timestamp
    (max-plus) dataflow semantics: a firing of actor [a] starts at the
    maximum over its input channels of the [cons]-th earliest ready time
    (consuming those tokens), completes [tau a] later and produces tokens
    ready at its completion. Firings of one actor may overlap
    (auto-concurrency, bounded only by self-loops), exactly as in the
    self-timed execution. Consistency restores the token counts, so
    occurrences compose.

    A transition with delay [d > 0] is an occupancy-holding rebinding
    barrier (the [Multi_app] commit idiom, after Jung/Oh/Ha): the switch
    holds the platform until the outgoing occurrence's last completion
    [F], then reconfigures for [d], so every token's ready time is
    clamped to at least [F + d] before the next occurrence. A zero delay
    is a seamless switch — no clamp, the modes pipeline freely — which
    makes the single-mode zero-delay FSM {e exactly} the free-running
    self-timed execution.

    {b Product space.} A product state is a mode paired with the
    min-normalized ready-time vector; the edge weight is the
    normalization shift (non-negative), so the weight of a cycle is the
    real time it takes. States are packed ({!Engine.Pack}) into the
    engine's seen-set ({!Engine.Stateset}); the adversary (the scenario
    sequence) branches, so exploration is a BFS over FSM transitions
    rather than the deterministic chain {!Engine.Explore} drives. The
    worst case over all infinite scenario sequences is governed by the
    maximum cycle mean (time per occurrence) of the explored product
    digraph, computed exactly with Karp's algorithm per SCC:
    [worst_rate = 1 / MCM] in occurrences (graph iterations) per time
    unit — {!Sdf.Rat.infinity} when every reachable cycle takes zero
    time. *)

type result = {
  worst_rate : Sdf.Rat.t;
      (** worst-case throughput over all scenario sequences, in graph
          iterations per time unit; actor [a]'s firing rate in mode [m]
          is [worst_rate * gamma.(m).(a)] *)
  product_states : int;
  product_edges : int;
}

type partial = {
  reason : Budget.reason;
  explored : int;  (** product states stored before the stop *)
  upper_bound : Sdf.Rat.t;
      (** sound upper bound on [worst_rate]: the best rate over the
          cycles explored so far (any reachable cycle can be ridden
          forever by an adversarial sequence), {!Sdf.Rat.infinity} when
          none was found yet *)
}

exception Deadlocked
(** Some reachable scenario prefix reaches a configuration in which a
    mode occurrence cannot complete its iteration. *)

exception State_space_exceeded of int
(** More product states than the allowed maximum were stored. *)

val analyze : ?max_states:int -> Fsm.t -> result
(** [analyze fsm] explores the product space. [max_states] defaults to
    [200_000]. Memoized on {!cache_key} (table ["scenario"]), negative
    outcomes included.
    @raise Deadlocked / State_space_exceeded as above. *)

val analyze_budgeted :
  ?max_states:int -> budget:Budget.t -> Fsm.t -> (result, partial) Stdlib.result
(** {!analyze} under a resource budget; [Error partial] when it runs out.
    Probes the memo first; partial outcomes are never cached. *)

val cache_key : ?max_states:int -> Fsm.t -> string
(** Canonical structural serialization (topology, per-mode rates and
    times, transitions with delays, initial mode, state cap); mode and
    actor names excluded. *)
