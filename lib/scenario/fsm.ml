module Sdfg = Sdf.Sdfg
module Repetition = Sdf.Repetition

type mode = {
  m_name : string;
  rates : (int * int) array;
  taus : int array;
}

type transition = { t_src : int; t_dst : int; delay : int }

type t = {
  name : string;
  graph : Sdfg.t;
  modes : mode array;
  transitions : transition array;
  initial : int;
  gamma : int array array;
  out : (int * int) array array;
}

let mode_graph_of graph (m : mode) =
  let b = Sdfg.Builder.create () in
  Array.iter
    (fun (a : Sdfg.actor) ->
      ignore (Sdfg.Builder.add_actor b a.Sdfg.a_name : int))
    (Sdfg.actors graph);
  Array.iter
    (fun (c : Sdfg.channel) ->
      let prod, cons = m.rates.(c.Sdfg.c_idx) in
      ignore
        (Sdfg.Builder.add_channel b ~name:c.Sdfg.c_name ~tokens:c.Sdfg.tokens
           ~src:c.Sdfg.src ~dst:c.Sdfg.dst ~prod ~cons ()
          : int))
    (Sdfg.channels graph);
  Sdfg.Builder.build b

let mode_graph t m = mode_graph_of t.graph t.modes.(m)

let fail fmt = Printf.ksprintf invalid_arg fmt

let make ~name ~graph ~modes ~transitions ~initial =
  let n = Sdfg.num_actors graph in
  let nc = Sdfg.num_channels graph in
  let nm = Array.length modes in
  if n = 0 then fail "Scenario.make: empty graph";
  if nm = 0 then fail "Scenario.make: no modes";
  for a = 0 to n - 1 do
    if Sdfg.in_channels graph a = [] then
      fail
        "Scenario.make: actor %s has no input channel (unbounded \
         auto-concurrency)"
        (Sdfg.actor_name graph a)
  done;
  let names = Hashtbl.create nm in
  Array.iter
    (fun m ->
      if Hashtbl.mem names m.m_name then
        fail "Scenario.make: duplicate mode %s" m.m_name;
      Hashtbl.add names m.m_name ();
      if Array.length m.rates <> nc then
        fail "Scenario.make: mode %s: rates length mismatch" m.m_name;
      if Array.length m.taus <> n then
        fail "Scenario.make: mode %s: taus length mismatch" m.m_name;
      Array.iter
        (fun (p, q) ->
          if p < 1 || q < 1 then
            fail "Scenario.make: mode %s: non-positive rate" m.m_name)
        m.rates;
      Array.iter
        (fun tau ->
          if tau < 0 then
            fail "Scenario.make: mode %s: negative execution time" m.m_name)
        m.taus)
    modes;
  if initial < 0 || initial >= nm then fail "Scenario.make: initial mode out of range";
  Array.iter
    (fun tr ->
      if tr.t_src < 0 || tr.t_src >= nm || tr.t_dst < 0 || tr.t_dst >= nm then
        fail "Scenario.make: transition endpoint out of range";
      if tr.delay < 0 then fail "Scenario.make: negative transition delay")
    transitions;
  let gamma =
    Array.map
      (fun m ->
        match Repetition.compute (mode_graph_of graph m) with
        | Repetition.Consistent g -> g
        | Repetition.Inconsistent _ ->
            fail "Scenario.make: mode %s is inconsistent" m.m_name
        | Repetition.Disconnected ->
            fail "Scenario.make: mode %s is not connected" m.m_name)
      modes
  in
  let out =
    let buckets = Array.make nm [] in
    Array.iter
      (fun tr -> buckets.(tr.t_src) <- (tr.t_dst, tr.delay) :: buckets.(tr.t_src))
      transitions;
    Array.map (fun l -> Array.of_list (List.rev l)) buckets
  in
  Array.iteri
    (fun q succ ->
      if Array.length succ = 0 then
        fail "Scenario.make: mode %s has no outgoing transition"
          modes.(q).m_name)
    out;
  { name; graph; modes; transitions; initial; gamma; out }

let single ?(name = "single") g taus =
  let rates =
    Array.map (fun (c : Sdfg.channel) -> (c.Sdfg.prod, c.Sdfg.cons)) (Sdfg.channels g)
  in
  make ~name ~graph:g
    ~modes:[| { m_name = "m0"; rates; taus = Array.copy taus } |]
    ~transitions:[| { t_src = 0; t_dst = 0; delay = 0 } |]
    ~initial:0

(* ------------------------------------------------------------------ *)
(* Text format, mirroring Sdf.Textio's line discipline. *)

exception Parse_error of { line : int; message : string }

let perr line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let int_of line what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> perr line "%s is not an integer: %s" what s

type pmode = {
  pm_name : string;
  pm_taus : int array;
  pm_rates : (int * int) array;
}

let parse ~graph ~taus ?name text =
  let n = Sdfg.num_actors graph in
  if Array.length taus <> n then
    invalid_arg "Scenario.parse: taus length mismatch";
  let actor_idx line nm =
    match Sdfg.actor_index graph nm with
    | a -> a
    | exception Not_found -> perr line "unknown actor %s" nm
  in
  let channel_idx line nm =
    let found = ref (-1) in
    Array.iter
      (fun (c : Sdfg.channel) -> if c.Sdfg.c_name = nm then found := c.Sdfg.c_idx)
      (Sdfg.channels graph);
    if !found < 0 then perr line "unknown channel %s" nm;
    !found
  in
  let scn_name = ref (Option.value name ~default:"scenario") in
  let modes = ref [] in
  let cur : pmode option ref = ref None in
  let edges = ref [] in
  let initial = ref None in
  let close_mode () =
    match !cur with
    | None -> ()
    | Some m ->
        modes := m :: !modes;
        cur := None
  in
  let base_rates () =
    Array.map (fun (c : Sdfg.channel) -> (c.Sdfg.prod, c.Sdfg.cons)) (Sdfg.channels graph)
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let ln = i + 1 in
      let l =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      match
        String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) l)
        |> List.filter (fun s -> s <> "")
      with
      | [] -> ()
      | [ "scenario"; nm ] -> scn_name := nm
      | [ "mode"; nm ] ->
          close_mode ();
          cur :=
            Some { pm_name = nm; pm_taus = Array.copy taus; pm_rates = base_rates () }
      | [ "actor"; nm; tau ] -> (
          match !cur with
          | None -> perr ln "actor line outside a mode"
          | Some m ->
              let tau = int_of ln "execution time" tau in
              m.pm_taus.(actor_idx ln nm) <- tau)
      | [ "channel"; nm; "rates"; p; q ] -> (
          match !cur with
          | None -> perr ln "channel line outside a mode"
          | Some m ->
              let p = int_of ln "production rate" p in
              let q = int_of ln "consumption rate" q in
              m.pm_rates.(channel_idx ln nm) <- (p, q))
      | [ "initial"; nm ] -> initial := Some (ln, nm)
      | "edge" :: src :: "->" :: dst :: rest ->
          let delay =
            match rest with
            | [] -> 0
            | [ "delay"; d ] -> int_of ln "delay" d
            | _ -> perr ln "malformed edge line"
          in
          edges := (ln, src, dst, delay) :: !edges
      | w :: _ -> perr ln "unknown directive %s" w)
    lines;
  close_mode ();
  let pmodes = Array.of_list (List.rev !modes) in
  if Array.length pmodes = 0 then perr 0 "no modes declared";
  let mode_idx line nm =
    let found = ref (-1) in
    Array.iteri (fun i m -> if m.pm_name = nm then found := i) pmodes;
    if !found < 0 then perr line "unknown mode %s" nm;
    !found
  in
  let transitions =
    match (!edges, Array.length pmodes) with
    | [], 1 -> [| { t_src = 0; t_dst = 0; delay = 0 } |]
    | edges, _ ->
        Array.of_list
          (List.rev_map
             (fun (ln, src, dst, delay) ->
               { t_src = mode_idx ln src; t_dst = mode_idx ln dst; delay })
             edges)
  in
  let initial =
    match !initial with Some (ln, nm) -> mode_idx ln nm | None -> 0
  in
  let modes =
    Array.map
      (fun m -> { m_name = m.pm_name; rates = m.pm_rates; taus = m.pm_taus })
      pmodes
  in
  match make ~name:!scn_name ~graph ~modes ~transitions ~initial with
  | fsm -> fsm
  | exception Invalid_argument m -> raise (Parse_error { line = 0; message = m })

let parse_file ~graph ~taus path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse ~graph ~taus text

let to_text t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "scenario %s\n" t.name);
  Array.iter
    (fun m ->
      Buffer.add_string b (Printf.sprintf "mode %s\n" m.m_name);
      Array.iteri
        (fun a tau ->
          Buffer.add_string b
            (Printf.sprintf "  actor %s %d\n" (Sdfg.actor_name t.graph a) tau))
        m.taus;
      Array.iteri
        (fun ci (p, q) ->
          Buffer.add_string b
            (Printf.sprintf "  channel %s rates %d %d\n"
               (Sdfg.channel_name t.graph ci) p q))
        m.rates)
    t.modes;
  Buffer.add_string b
    (Printf.sprintf "initial %s\n" t.modes.(t.initial).m_name);
  Array.iter
    (fun tr ->
      Buffer.add_string b
        (Printf.sprintf "edge %s -> %s delay %d\n" t.modes.(tr.t_src).m_name
           t.modes.(tr.t_dst).m_name tr.delay))
    t.transitions;
  Buffer.contents b
